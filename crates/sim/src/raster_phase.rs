//! The event-driven Raster Pipeline: N Raster Units rendering tiles in parallel.
//!
//! Each Raster Unit is a two-stage *tile pipeline*, matching §III-A: "there are
//! barriers between stages, so a tile cannot proceed to a given stage until the
//! preceding tile has completed that stage". Concretely:
//!
//! * the **front-end** (Parameter-Buffer fetch → rasterise → Early-Z) of tile *i + 1*
//!   runs while the **fragment stage** of tile *i* is still shading;
//! * the fragment stage of tile *i + 1* only starts once tile *i*'s fragments have
//!   completed and its Colour Buffer has been flushed (single buffer per RU).
//!
//! Warps execute *steppably* — one texture-sample stage per event — and a global
//! scheduler loop always advances the micro-event with the earliest timestamp across
//! all RUs and cores. This gives the two properties the study depends on: warps on a
//! core overlap (latency hiding), and accesses to the shared L2/DRAM from different
//! RUs interleave in causal time order (faithful cross-RU contention).
//!
//! Warp slots (`max_warps_per_core`) gate admission: when a core's slots are full,
//! new warps wait for a retirement — why low-workload tiles cannot fill wide cores
//! (the Fig 4 effect).

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::Instant;

use tbr_common::fasthash::U64Set;
use tbr_common::hostprof::{self, PhaseProfile, WorkerLane, RUN_LENGTH_BUCKETS};

use libra::scheduler::FramePlan;
use tbr_common::config::GpuConfig;
use tbr_common::event_queue::{EventQueue, ShardedEventQueue};
use tbr_common::mechanism::MechanismSpec;
use tbr_common::ids::{RasterUnitId, TileId};
use tbr_common::stats::TileHeatmap;
use tbr_common::trace::{self, Track};
use tbr_common::Cycle;
use tbr_geom::stream::TriangleStream;
use tbr_mem::channels::ChannelQueues;
use tbr_mem::hierarchy::MemoryHierarchy;
use tbr_raster::raster_unit::{RasterUnit, WarpWork};
use tbr_raster::shader::WarpExecState;
use tbr_tiling::binner::TileBins;

use crate::event_loop::{self, EventLoopMode};

/// Aggregate output of one frame's raster phase.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RasterPhaseResult {
    /// Cycles from phase start to the last warp/flush completion.
    pub raster_cycles: Cycle,
    /// Per-tile DRAM/instruction attribution (LIBRA's profile and Fig 2's heatmap).
    pub heatmap: TileHeatmap,
    /// Fragments shaded.
    pub fragments: u64,
    /// Fragments killed by Early-Z.
    pub earlyz_killed: u64,
    /// Warps executed.
    pub warps: u64,
    /// SIMD instructions executed.
    pub instructions: u64,
    /// Line-granular texture requests.
    pub tex_requests: u64,
    /// Sum of texture request latencies.
    pub tex_latency_sum: u64,
    /// Texture lines filled into L1s (with cross-core duplicates).
    pub fill_lines: u64,
    /// Distinct texture lines touched frame-wide.
    pub unique_lines: u64,
    /// Sum over tiles of front-end occupancy (fetch + rasterise + Early-Z).
    pub fe_cycles: u64,
    /// Sum over tiles of fragment-stage occupancy (start to last warp retired).
    pub drain_cycles: u64,
    /// Sum over tiles of colour-buffer flush issue time.
    pub flush_cycles: u64,
    /// Cycle at which each Raster Unit finished its last tile (load balance).
    pub ru_finish: Vec<Cycle>,
    /// Micro-events processed by the event loop (one per scheduler decision).
    /// Identical between the heap and scan drivers; the throughput benchmark
    /// divides wall-clock by this to get ns/event.
    pub events: u64,
    /// Tiles where WaSP engaged (texture-L1 miss ratio above the threshold at
    /// front-end completion). Zero unless the `wasp` mechanism is enabled.
    pub wasp_engaged_tiles: u64,
    /// Warps promoted into WaSP spearhead groups across the frame.
    pub wasp_spearhead_warps: u64,
    /// Tiles whose warp issue order actually changed under WaSP.
    pub wasp_reordered_tiles: u64,
}

#[derive(Debug)]
struct InFlight {
    warp: WarpWork,
    exec: WarpExecState,
    core: usize,
}

/// A tile whose front-end has completed, parked until the fragment stage frees up.
#[derive(Debug)]
struct FeReady {
    tile: TileId,
    fe_done: Cycle,
    warps: VecDeque<WarpWork>,
}

#[derive(Debug)]
struct RuState {
    tiles: VecDeque<TileId>,
    fe_ready: Option<FeReady>,
    fe_time: Cycle,
    pending: VecDeque<WarpWork>,
    inflight: Vec<InFlight>,
    core_load: Vec<usize>,
    /// When the RU was fully occupied, the retirement that freed a slot gates the
    /// next admission to its completion time (consumed by that admission).
    slot_gate: Cycle,
    cur_tile: Option<TileId>,
    /// When the fragment stage may take the next tile: previous tile's fragments
    /// done AND the double-buffered Colour Buffer's older half flushed.
    frag_gate: Cycle,
    /// Flush completion of the most recently flushed tile (gates the tile after
    /// next, since the Colour Buffer is double-buffered).
    last_flush_done: Cycle,
    /// When the fragment stage of the current tile started (for accounting).
    frag_start: Cycle,
    /// Last warp completion of the current tile.
    tile_last: Cycle,
    no_more_groups: bool,
}

impl RuState {
    fn has_free_slot(&self, max_warps: usize) -> bool {
        self.core_load.iter().any(|&l| l < max_warps)
    }

    fn fragment_stage_idle(&self) -> bool {
        self.pending.is_empty() && self.inflight.is_empty() && self.cur_tile.is_none()
    }

    fn finished(&self) -> bool {
        self.no_more_groups
            && self.tiles.is_empty()
            && self.fe_ready.is_none()
            && self.fragment_stage_idle()
    }

    /// Earliest micro-event this RU can process, if any.
    fn next_time(&self, max_warps: usize) -> Option<Cycle> {
        if self.finished() {
            return None;
        }
        let mut t: Option<Cycle> = None;
        let mut consider = |c: Cycle| t = Some(t.map_or(c, |x: Cycle| x.min(c)));
        if let Some(w) = self.pending.front() {
            if self.has_free_slot(max_warps) {
                consider(w.arrival.max(self.frag_gate).max(self.slot_gate));
            }
        }
        for f in &self.inflight {
            consider(f.exec.ready_at());
        }
        if let Some(r) = &self.fe_ready {
            if self.fragment_stage_idle() {
                // Promotion of the parked tile into the fragment stage.
                consider(self.frag_gate.max(r.fe_done));
            }
        }
        if self.fe_ready.is_none() && !(self.no_more_groups && self.tiles.is_empty()) {
            consider(self.fe_time); // front-end of the next tile
        }
        t
    }
}

/// What processing one event changed about the RU's in-flight warp set — exactly
/// the information the indexed driver needs to update its per-RU warp queue
/// incrementally (the scan driver ignores it).
#[derive(Debug, Clone, Copy)]
enum Effect {
    /// The warp at `idx` stepped and stays in flight with a new ready time.
    Stepped { idx: usize },
    /// The warp at `idx` retired. Removal is `swap_remove`, so the former last
    /// warp (if any) now lives at `idx`; its queue entry under the old position
    /// lazily invalidates.
    Retired { idx: usize },
    /// A pending warp was admitted at the back of `inflight`.
    Admitted,
    /// Promotion / front-end / steal / finish: the in-flight set is unchanged.
    Other,
}

/// Which branch of [`PhaseCtx::process`] fires for an RU's next micro-event.
///
/// Selection reads only the RU's own state, and there is exactly one selector
/// ([`select_branch`]) shared by the serial execution path, the parallel
/// workers' local drains, and the parallel coordinator's event classifier —
/// so what a worker *predicts* an event will do can never diverge from what
/// [`PhaseCtx::process`] actually does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Branch {
    /// Step the earliest in-flight warp.
    Step,
    /// Admit the pending warp at the queue head into a core slot.
    Admit,
    /// Promote the parked front-end-complete tile into the fragment stage.
    Promote,
    /// Run the front-end of the next tile / refill / steal / mark finished.
    FrontEnd,
}

/// The branch-priority spec every driver reproduces: step the earliest
/// in-flight warp when it ties-or-beats every other candidate; else admit a
/// pending warp when its start does not overtake that warp; else promote a
/// parked tile; else run the front-end. `step` is the earliest in-flight warp
/// as `(vector position, ready time)` — lowest position among ties.
fn select_branch(st: &RuState, step: Option<(usize, Cycle)>, max_warps: usize) -> Branch {
    let other_min = {
        let mut t: Option<Cycle> = None;
        let mut consider = |c: Cycle| t = Some(t.map_or(c, |x: Cycle| x.min(c)));
        if let Some(w) = st.pending.front() {
            if st.has_free_slot(max_warps) {
                consider(w.arrival.max(st.frag_gate).max(st.slot_gate));
            }
        }
        if let Some(r) = &st.fe_ready {
            if st.fragment_stage_idle() {
                consider(st.frag_gate.max(r.fe_done));
            }
        }
        if st.fe_ready.is_none() && !(st.no_more_groups && st.tiles.is_empty()) {
            consider(st.fe_time);
        }
        t
    };
    if let Some((_, t)) = step {
        if other_min.is_none_or(|o| t <= o) {
            return Branch::Step;
        }
    }
    if let Some(w) = st.pending.front() {
        if st.has_free_slot(max_warps) {
            let start = w.arrival.max(st.frag_gate).max(st.slot_gate);
            if step.is_none_or(|(_, t)| start <= t) {
                return Branch::Admit;
            }
        }
    }
    if st.fragment_stage_idle() && st.fe_ready.is_some() {
        return Branch::Promote;
    }
    Branch::FrontEnd
}

/// The earliest in-flight warp as `(vector position, ready time)`, lowest
/// position among ties — the `step_idx` contract of [`PhaseCtx::process`]
/// (scan and par compute it with this linear pass; heap answers it from the
/// RU's warp queue, whose `(ready, position)` key order agrees).
fn earliest_step(st: &RuState) -> Option<(usize, Cycle)> {
    st.inflight
        .iter()
        .enumerate()
        .min_by_key(|(_, f)| f.exec.ready_at())
        .map(|(k, f)| (k, f.exec.ready_at()))
}

/// Everything one frame's raster phase threads through its event loop. The
/// branch semantics live in [`PhaseCtx::process`]; the *order* in which events
/// are selected lives in the drivers ([`drive_scan`] / [`drive_heap`] /
/// [`drive_par`]), which must agree bit-identically.
struct PhaseCtx<'a> {
    cfg: &'a GpuConfig,
    max_warps: usize,
    rus: &'a mut [RasterUnit],
    hier: &'a mut MemoryHierarchy,
    plan: &'a mut FramePlan,
    prims: &'a TriangleStream,
    bins: &'a TileBins,
    /// Mechanism axis: only `wasp` is consulted here (RE filters the plan
    /// before the phase starts, so the drivers never see eliminated tiles).
    mech: MechanismSpec,
    states: Vec<RuState>,
    out: RasterPhaseResult,
    unique: U64Set,
    frame_end: Cycle,
}

impl<'a> PhaseCtx<'a> {
    /// Processes one micro-event on RU `i`. `step_idx` is the earliest in-flight
    /// warp as `(vector position, ready time)` — lowest position among ties —
    /// supplied by the driver (scan: `min_by_key`; heap: warp-queue peek).
    ///
    /// Branch priority (the spec both drivers reproduce): step the earliest warp
    /// when it ties-or-beats every other candidate; else admit a pending warp;
    /// else promote a parked tile; else run the front-end / steal / finish.
    fn process(&mut self, i: usize, step_idx: Option<(usize, Cycle)>) -> Effect {
        let Self {
            cfg,
            max_warps,
            rus,
            hier,
            plan,
            prims,
            bins,
            mech,
            states,
            out,
            unique,
            frame_end,
        } = self;
        let max_warps = *max_warps;
        let mech = *mech;
        let st = &mut states[i];

        let branch = select_branch(st, step_idx, max_warps);
        match branch {
            // 1) Step the earliest in-flight warp: it is the earliest event.
            Branch::Step => {
                let (idx, _) = step_idx.expect("Step branch implies a step candidate");
                let done = {
                    let InFlight { warp, exec, core } = &mut st.inflight[idx];
                    rus[i].step_warp_on(*core, warp, exec, hier)
                };
                if !done {
                    return Effect::Stepped { idx };
                }
                let was_full = !st.has_free_slot(max_warps);
                let f = st.inflight.swap_remove(idx);
                let o = f.exec.outcome;
                out.warps += 1;
                out.instructions += o.instructions;
                out.tex_requests += o.tex_requests;
                out.tex_latency_sum += o.tex_latency_sum;
                out.fill_lines += o.fills.len() as u64;
                unique.extend(o.fills.iter().copied());
                let tally = out.heatmap.tally_mut(f.warp.tile);
                tally.instructions += o.instructions;
                tally.dram_accesses += o.dram_accesses;
                tally.warps += 1;
                st.core_load[f.core] -= 1;
                if was_full {
                    st.slot_gate = st.slot_gate.max(o.completion);
                }
                st.tile_last = st.tile_last.max(o.completion);

                if st.pending.is_empty() && st.inflight.is_empty() {
                    // Fragment stage done: flush asynchronously (double-buffered
                    // Colour Buffer — the flush only gates the tile after next).
                    let tile = st.cur_tile.take().expect("warps imply a current tile");
                    let flush_start = st.tile_last;
                    out.drain_cycles += flush_start.saturating_sub(st.frag_start);
                    if trace::is_enabled() {
                        trace::span(
                            Track::RuFragment(i as u8),
                            format!("tile {}", tile.0),
                            st.frag_start,
                            flush_start,
                        );
                    }
                    let (flush_done, last_write, writes) =
                        rus[i].flush_tile(tile, &cfg.screen, flush_start, hier);
                    out.flush_cycles += flush_done - flush_start;
                    if trace::is_enabled() {
                        trace::span(
                            Track::RuFlush(i as u8),
                            format!("flush {}", tile.0),
                            flush_start,
                            flush_done,
                        );
                    }
                    out.heatmap.tally_mut(tile).dram_accesses += writes;
                    st.frag_gate = flush_start.max(st.last_flush_done);
                    st.last_flush_done = flush_done;
                    st.slot_gate = 0;
                    out.ru_finish[i] = out.ru_finish[i].max(last_write).max(flush_start);
                    *frame_end = (*frame_end).max(last_write).max(flush_start);
                }
                Effect::Retired { idx }
            }

            // 2) Admit a pending warp into a core slot.
            Branch::Admit => {
                let w = st
                    .pending
                    .pop_front()
                    .expect("Admit branch implies a pending warp");
                let start = w.arrival.max(st.frag_gate).max(st.slot_gate);
                let core = (0..st.core_load.len())
                    .filter(|&c| st.core_load[c] < max_warps)
                    .min_by_key(|&c| st.core_load[c])
                    .expect("Admit branch implies a free slot");
                st.slot_gate = 0;
                let exec = rus[i].begin_warp_on(core, start);
                st.core_load[core] += 1;
                st.inflight.push(InFlight {
                    warp: w,
                    exec,
                    core,
                });
                Effect::Admitted
            }

            // 3) Promote a parked tile into the (idle) fragment stage.
            Branch::Promote => {
                let r = st
                    .fe_ready
                    .take()
                    .expect("Promote branch implies a parked tile");
                let start = st.frag_gate.max(r.fe_done);
                // The front-end unit is free for the next tile from this moment.
                st.fe_time = st.fe_time.max(start);
                if r.warps.is_empty() {
                    // Empty tile: nothing to shade; flush the cleared Colour Buffer.
                    let (flush_done, last_write, writes) =
                        rus[i].flush_tile(r.tile, &cfg.screen, start, hier);
                    out.flush_cycles += flush_done - start;
                    if trace::is_enabled() {
                        trace::span(
                            Track::RuFlush(i as u8),
                            format!("flush {}", r.tile.0),
                            start,
                            flush_done,
                        );
                    }
                    out.heatmap.tally_mut(r.tile).dram_accesses += writes;
                    st.frag_gate = start.max(st.last_flush_done);
                    st.last_flush_done = flush_done;
                    out.ru_finish[i] = out.ru_finish[i].max(last_write);
                    *frame_end = (*frame_end).max(last_write);
                } else {
                    st.cur_tile = Some(r.tile);
                    st.pending = r.warps;
                    st.frag_start = start;
                    st.tile_last = start;
                }
                Effect::Other
            }

            // 4) Run the front-end of the next tile.
            Branch::FrontEnd => {
                debug_assert!(st.fe_ready.is_none(), "FrontEnd branch with a parked tile");
                if st.tiles.is_empty() && !st.no_more_groups {
                    match plan.next_group(RasterUnitId(i as u8)) {
                        Some(group) => st.tiles.extend(group),
                        None => {
                            // The plan is exhausted. The Tile Fetcher is work-conserving:
                            // tiles are independent (only primitives *within* a tile must
                            // stay on one RU), so an idle RU takes the tail of the busiest
                            // RU's queued tiles instead of idling out the frame.
                            let victim = (0..states.len())
                                .filter(|&j| j != i)
                                .max_by_key(|&j| states[j].tiles.len());
                            let stolen = match victim {
                                Some(j) if states[j].tiles.len() >= 2 => {
                                    let keep = states[j].tiles.len() / 2 + 1;
                                    states[j].tiles.split_off(keep)
                                }
                                _ => VecDeque::new(),
                            };
                            let st = &mut states[i];
                            if !stolen.is_empty() && trace::is_enabled() {
                                trace::instant_args(
                                    Track::Scheduler,
                                    "tile steal",
                                    st.fe_time,
                                    vec![
                                        ("thief", i.to_string()),
                                        (
                                            "victim",
                                            victim.expect("stolen implies victim").to_string(),
                                        ),
                                        ("tiles", stolen.len().to_string()),
                                    ],
                                );
                            }
                            if stolen.is_empty() {
                                st.no_more_groups = true;
                                let finish = st.fe_time.max(st.frag_gate).max(st.last_flush_done);
                                out.ru_finish[i] = out.ru_finish[i].max(finish);
                                *frame_end = (*frame_end).max(finish);
                            } else {
                                st.tiles = stolen;
                            }
                            return Effect::Other;
                        }
                    }
                }
                if let Some(tile) = st.tiles.pop_front() {
                    let list = bins.list(tile);
                    let fe_start = st.fe_time;
                    let fe = rus[i].render_tile_front_end(
                        tile,
                        prims,
                        list,
                        &cfg.screen,
                        st.fe_time,
                        hier,
                    );
                    out.fe_cycles += fe.fe_done - st.fe_time;
                    if trace::is_enabled() {
                        trace::span_args(
                            Track::RuFrontEnd(i as u8),
                            format!("tile {}", tile.0),
                            fe_start,
                            fe.fe_done,
                            vec![
                                ("prims", list.len().to_string()),
                                ("fragments", fe.fragments.to_string()),
                            ],
                        );
                    }
                    out.fragments += fe.fragments;
                    out.earlyz_killed += fe.earlyz_killed;
                    {
                        let tally = out.heatmap.tally_mut(tile);
                        tally.dram_accesses += fe.dram_accesses;
                        tally.fragments += fe.fragments;
                    }
                    st.fe_time = fe.fe_done;
                    let mut warps = fe.warps;
                    if mech.wasp {
                        // WaSP reorders the tile's warp queue at front-end
                        // completion. FrontEnd is a Shared branch in every
                        // driver (the par coordinator commits it serially),
                        // and the RU's texture stats at this event are
                        // bit-identical across drivers, so the reorder is too.
                        let d = tbr_raster::wasp::schedule_tile_warps(&rus[i], &mut warps);
                        if d.engaged {
                            out.wasp_engaged_tiles += 1;
                            out.wasp_spearhead_warps += d.spearhead;
                        }
                        if d.reordered {
                            out.wasp_reordered_tiles += 1;
                        }
                    }
                    st.fe_ready = Some(FeReady {
                        tile,
                        fe_done: fe.fe_done,
                        warps: warps.into(),
                    });
                }
                Effect::Other
            }
        }
    }
}

/// The legacy O(RUs × warps)-per-event linear scan — the behavioural oracle the
/// indexed driver is differentially tested against (`LIBRA_EVENT_LOOP=scan`).
fn drive_scan(ctx: &mut PhaseCtx) {
    loop {
        // Pick the RU with the earliest micro-event (strict `<`: lowest index
        // wins ties — the contract the heap driver's key order reproduces).
        let mut best: Option<(usize, Cycle)> = None;
        for (i, st) in ctx.states.iter().enumerate() {
            if let Some(t) = st.next_time(ctx.max_warps) {
                if best.is_none_or(|(_, bt)| t < bt) {
                    best = Some((i, t));
                }
            }
        }
        let Some((i, _event_time)) = best else {
            break; // all RUs done
        };
        let step_idx = earliest_step(&ctx.states[i]);
        ctx.out.events += 1;
        ctx.process(i, step_idx);
    }
}

/// `next_time` with the in-flight minimum answered by the RU's warp queue
/// instead of a linear pass (must stay semantically identical to
/// [`RuState::next_time`]).
fn next_time_indexed(st: &RuState, max_warps: usize, warps: &mut EventQueue<u32>) -> Option<Cycle> {
    if st.finished() {
        return None;
    }
    let mut t: Option<Cycle> = None;
    let mut consider = |c: Cycle| t = Some(t.map_or(c, |x: Cycle| x.min(c)));
    if let Some(w) = st.pending.front() {
        if st.has_free_slot(max_warps) {
            consider(w.arrival.max(st.frag_gate).max(st.slot_gate));
        }
    }
    if let Some((wt, _)) = warps.peek_valid(|wt, k| {
        (k as usize) < st.inflight.len() && st.inflight[k as usize].exec.ready_at() == wt
    }) {
        consider(wt);
    }
    if let Some(r) = &st.fe_ready {
        if st.fragment_stage_idle() {
            consider(st.frag_gate.max(r.fe_done));
        }
    }
    if st.fe_ready.is_none() && !(st.no_more_groups && st.tiles.is_empty()) {
        consider(st.fe_time);
    }
    t
}

/// The indexed next-event driver: a global queue of RUs keyed `(next event
/// time, RU index)` plus one warp queue per RU keyed `(ready time, in-flight
/// position)`. Lexicographic key order makes every pop reproduce the scan's
/// first-minimum tie-break exactly; rescheduled entries invalidate lazily.
///
/// Invariants the [`Effect`] bookkeeping maintains:
/// * every in-flight warp has a queue entry under its current `(ready, pos)` —
///   stale duplicates are harmless because an entry that passes validation is
///   indistinguishable from the live entry with the same key;
/// * `cached[i]` is RU *i*'s current `next_time` and the RU queue holds an
///   entry for it. Processing RU *i* never changes another RU's `next_time`
///   (tile stealing leaves the victim's candidate set untouched: the victim
///   keeps a non-empty tile queue), so only RU *i* is recomputed per event.
fn drive_heap(ctx: &mut PhaseCtx) {
    let n = ctx.states.len();
    let mut warp_queues: Vec<EventQueue<u32>> = (0..n).map(|_| EventQueue::new()).collect();
    let mut cached: Vec<Option<Cycle>> = vec![None; n];
    let mut ru_queue: EventQueue<u32> = EventQueue::with_capacity(n);
    for (i, slot) in cached.iter_mut().enumerate() {
        *slot = ctx.states[i].next_time(ctx.max_warps);
        if let Some(t) = *slot {
            ru_queue.push(t, i as u32);
        }
    }

    while let Some((_, iu)) = ru_queue.pop_valid(|t, k| cached[k as usize] == Some(t)) {
        let i = iu as usize;
        let step_idx = {
            let st = &ctx.states[i];
            warp_queues[i]
                .peek_valid(|t, k| {
                    (k as usize) < st.inflight.len() && st.inflight[k as usize].exec.ready_at() == t
                })
                .map(|(t, k)| (k as usize, t))
        };
        ctx.out.events += 1;
        let effect = ctx.process(i, step_idx);

        let wq = &mut warp_queues[i];
        let st = &ctx.states[i];
        match effect {
            Effect::Stepped { idx } => {
                // The peeked entry was consumed; the warp rescheduled.
                wq.pop();
                wq.push(st.inflight[idx].exec.ready_at(), idx as u32);
            }
            Effect::Retired { idx } => {
                wq.pop();
                if st.inflight.is_empty() {
                    wq.clear();
                } else if idx < st.inflight.len() {
                    // swap_remove moved the former last warp into `idx`.
                    wq.push(st.inflight[idx].exec.ready_at(), idx as u32);
                }
            }
            Effect::Admitted => {
                let idx = st.inflight.len() - 1;
                wq.push(st.inflight[idx].exec.ready_at(), idx as u32);
            }
            Effect::Other => {}
        }
        cached[i] = next_time_indexed(st, ctx.max_warps, wq);
        if let Some(t) = cached[i] {
            ru_queue.push(t, i as u32);
        }
    }
}

/// How RU `i`'s next micro-event relates to shared simulation state — the
/// partitioning decision at the heart of [`drive_par`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    /// No next event: the RU has finished the frame.
    Done,
    /// The event reads and writes only the RU's own state (plus its private
    /// per-core L1s): a warp step whose stage lines are all L1-resident and
    /// whose retirement would not complete the tile, a warp admission, or the
    /// promotion of a non-empty tile. Safe to run on a worker thread.
    Local,
    /// The event touches shared state — the L2/DRAM hierarchy, the frame
    /// plan, other RUs' tile queues (stealing), or the trace stream — and must
    /// be committed serially by the coordinator in canonical `(time, RU)`
    /// order. `channel` names the DRAM channel serving the blocking miss for a
    /// non-resident step; `None` for every other shared event.
    Shared { time: Cycle, channel: Option<usize> },
}

/// Classifies RU `i`'s next micro-event. Branch selection goes through the
/// same [`select_branch`] that [`PhaseCtx::process`] executes, so the
/// classification cannot disagree with what processing the event would do.
fn classify(st: &RuState, ru: &RasterUnit, hier: &MemoryHierarchy, max_warps: usize) -> Class {
    let Some(time) = st.next_time(max_warps) else {
        return Class::Done;
    };
    let step = earliest_step(st);
    match select_branch(st, step, max_warps) {
        Branch::Step => {
            let (idx, _) = step.expect("Step branch implies a step candidate");
            let f = &st.inflight[idx];
            let resident = ru.warp_step_is_resident(f.core, &f.warp, &f.exec, hier.ideal);
            let retires = ru.warp_step_retires(&f.warp, &f.exec);
            let would_flush = retires && st.pending.is_empty() && st.inflight.len() == 1;
            if resident && !would_flush {
                Class::Local
            } else {
                let channel = ru
                    .warp_step_first_miss(f.core, &f.warp, &f.exec)
                    .map(|line| hier.dram_channel_of(line));
                Class::Shared { time, channel }
            }
        }
        Branch::Admit => Class::Local,
        Branch::Promote => {
            let parked = st
                .fe_ready
                .as_ref()
                .expect("Promote branch implies a parked tile");
            if parked.warps.is_empty() {
                // An empty tile's promotion immediately flushes the Colour
                // Buffer through the shared hierarchy.
                Class::Shared {
                    time,
                    channel: None,
                }
            } else {
                Class::Local
            }
        }
        Branch::FrontEnd => Class::Shared {
            time,
            channel: None,
        },
    }
}

/// Per-thread accumulation for Local events: the same frame-wide counters
/// [`PhaseCtx::process`] writes, kept private to one thread during an epoch
/// and merged commutatively at the end of the phase (sums, element-wise
/// heatmap adds, set union) — so the merged totals are independent of how the
/// Local RUs were distributed over threads.
struct ParScratch {
    out: RasterPhaseResult,
    fills: U64Set,
    /// Local events drained per RU (hostprof occupancy telemetry). Plain
    /// integer adds per *run*, so it stays on even when profiling is off.
    ru_events: Vec<u64>,
    /// Local-run-length histogram: width-1 buckets, last bucket overflow.
    run_lengths: Vec<u64>,
}

impl ParScratch {
    fn new(num_tiles: usize, num_rus: usize) -> Self {
        Self {
            out: RasterPhaseResult {
                heatmap: TileHeatmap::new(num_tiles),
                ..RasterPhaseResult::default()
            },
            fills: U64Set::default(),
            ru_events: vec![0; num_rus],
            run_lengths: vec![0; RUN_LENGTH_BUCKETS],
        }
    }

    /// Accounts one completed Local run of `events` micro-events on RU `idx`.
    fn note_run(&mut self, idx: usize, events: u64) {
        if events == 0 {
            return;
        }
        self.ru_events[idx] += events;
        self.run_lengths[(events as usize).min(RUN_LENGTH_BUCKETS - 1)] += 1;
    }
}

/// Folds one thread's scratch into the shared phase result.
fn absorb_scratch(ctx: &mut PhaseCtx, s: ParScratch) {
    let o = s.out;
    ctx.out.warps += o.warps;
    ctx.out.instructions += o.instructions;
    ctx.out.tex_requests += o.tex_requests;
    ctx.out.tex_latency_sum += o.tex_latency_sum;
    ctx.out.fill_lines += o.fill_lines;
    ctx.out.events += o.events;
    for (dst, src) in ctx.out.heatmap.tiles.iter_mut().zip(o.heatmap.tiles) {
        dst.dram_accesses += src.dram_accesses;
        dst.instructions += src.instructions;
        dst.fragments += src.fragments;
        dst.warps += src.warps;
    }
    ctx.unique.extend(s.fills);
}

/// Runs RU `i`'s maximal run of Local events, stopping at the first Shared
/// event (left parked for the coordinator) or when the RU has nothing left.
/// Exactly the Local arms of [`PhaseCtx::process`] — same [`select_branch`],
/// same bookkeeping — with the frame-wide counters written to `scratch`
/// instead of the shared result, and the resident-step fast path
/// ([`RasterUnit::step_warp_on_resident`]) in place of the hierarchy step.
fn drain_local(
    ru: &mut RasterUnit,
    st: &mut RuState,
    scratch: &mut ParScratch,
    gate: &mut Cycle,
    idx: usize,
    max_warps: usize,
    ideal: bool,
) {
    let run_start = scratch.out.events;
    while let Some(nt) = st.next_time(max_warps) {
        let step = earliest_step(st);
        let branch = select_branch(st, step, max_warps);
        match branch {
            Branch::Step => {
                let (idx, _) = step.expect("Step branch implies a step candidate");
                let (resident, retires) = {
                    let f = &st.inflight[idx];
                    (
                        ru.warp_step_is_resident(f.core, &f.warp, &f.exec, ideal),
                        ru.warp_step_retires(&f.warp, &f.exec),
                    )
                };
                let would_flush = retires && st.pending.is_empty() && st.inflight.len() == 1;
                if !resident || would_flush {
                    break; // Shared: park for the coordinator
                }
                *gate = (*gate).max(nt);
                scratch.out.events += 1;
                let done = {
                    let InFlight { warp, exec, core } = &mut st.inflight[idx];
                    ru.step_warp_on_resident(*core, warp, exec, ideal)
                };
                debug_assert_eq!(done, retires, "step_retires mispredicted a step");
                if !done {
                    continue;
                }
                let was_full = !st.has_free_slot(max_warps);
                let f = st.inflight.swap_remove(idx);
                let o = f.exec.outcome;
                scratch.out.warps += 1;
                scratch.out.instructions += o.instructions;
                scratch.out.tex_requests += o.tex_requests;
                scratch.out.tex_latency_sum += o.tex_latency_sum;
                scratch.out.fill_lines += o.fills.len() as u64;
                scratch.fills.extend(o.fills.iter().copied());
                let tally = scratch.out.heatmap.tally_mut(f.warp.tile);
                tally.instructions += o.instructions;
                tally.dram_accesses += o.dram_accesses;
                tally.warps += 1;
                st.core_load[f.core] -= 1;
                if was_full {
                    st.slot_gate = st.slot_gate.max(o.completion);
                }
                st.tile_last = st.tile_last.max(o.completion);
                debug_assert!(
                    !(st.pending.is_empty() && st.inflight.is_empty()),
                    "a Local retirement completed the tile (flush is Shared)"
                );
            }
            Branch::Admit => {
                *gate = (*gate).max(nt);
                scratch.out.events += 1;
                let w = st
                    .pending
                    .pop_front()
                    .expect("Admit branch implies a pending warp");
                let start = w.arrival.max(st.frag_gate).max(st.slot_gate);
                let core = (0..st.core_load.len())
                    .filter(|&c| st.core_load[c] < max_warps)
                    .min_by_key(|&c| st.core_load[c])
                    .expect("Admit branch implies a free slot");
                st.slot_gate = 0;
                let exec = ru.begin_warp_on(core, start);
                st.core_load[core] += 1;
                st.inflight.push(InFlight {
                    warp: w,
                    exec,
                    core,
                });
            }
            Branch::Promote => {
                let parked = st
                    .fe_ready
                    .as_ref()
                    .expect("Promote branch implies a parked tile");
                if parked.warps.is_empty() {
                    break; // empty tile: the promotion flushes — Shared
                }
                *gate = (*gate).max(nt);
                scratch.out.events += 1;
                let r = st.fe_ready.take().expect("checked above");
                let start = st.frag_gate.max(r.fe_done);
                st.fe_time = st.fe_time.max(start);
                st.cur_tile = Some(r.tile);
                st.pending = r.warps;
                st.frag_start = start;
                st.tile_last = start;
            }
            Branch::FrontEnd => break, // always Shared
        }
    }
    scratch.note_run(idx, scratch.out.events - run_start);
}

/// [`drain_local`] through the context (the coordinator's inline path).
fn drain_local_inline(ctx: &mut PhaseCtx, i: usize, scratch: &mut ParScratch, gate: &mut Cycle) {
    let ideal = ctx.hier.ideal;
    let max_warps = ctx.max_warps;
    let PhaseCtx { rus, states, .. } = ctx;
    drain_local(&mut rus[i], &mut states[i], scratch, gate, i, max_warps, ideal);
}

/// Classifies RU `i`'s next event and parks it: Local RUs go on the epoch's
/// drain list; Shared events are filed under the DRAM channel serving the
/// blocking miss (channel ledger) or under the RU's own shard (RU ledger),
/// keyed `(gate ⊔ raw time, RU index)` — the serial drivers' pop order (see
/// [`drive_par`] for why the gate, the running maximum of the RU's pop keys,
/// is the correct merge key for back-dated events).
fn park(
    ctx: &PhaseCtx,
    i: usize,
    gate: Cycle,
    chan: &mut ChannelQueues<u32>,
    ru_parked: &mut ShardedEventQueue<u32>,
    locals: &mut Vec<usize>,
) {
    match classify(&ctx.states[i], &ctx.rus[i], ctx.hier, ctx.max_warps) {
        Class::Done => {}
        Class::Local => locals.push(i),
        Class::Shared {
            time,
            channel: Some(c),
        } => chan.push(c, gate.max(time), i as u32),
        Class::Shared {
            time,
            channel: None,
        } => ru_parked.push(i, gate.max(time), i as u32),
    }
}

/// Host-time accumulator for one [`drive_par`] phase, feeding
/// [`tbr_common::hostprof`]. Plain counters (epoch/commit tallies, per-RU
/// Shared counts) stay on unconditionally — integer adds per epoch or per
/// commit, invisible next to the work they count. Everything touching the host
/// clock (`Instant::now`) or allocating spans is gated on `on`, which is read
/// once per phase from [`hostprof::is_enabled`], so the disabled path adds a
/// single branch per timed block and no clock reads at all.
struct ParProf {
    on: bool,
    origin: Instant,
    commit_ns: u64,
    coord_drain_ns: u64,
    barrier_ns: u64,
    epochs: u64,
    parallel_epochs: u64,
    chan_commits: u64,
    ru_ledger_commits: u64,
    /// Shared commits per RU (summed with the scratches' Local counts into
    /// the occupancy histogram).
    ru_shared: Vec<u64>,
    /// The coordinator's own drain lane (spans recorded per parallel epoch).
    coord: WorkerLane,
}

impl ParProf {
    fn new(num_rus: usize) -> Self {
        let on = hostprof::is_enabled();
        Self {
            on,
            // Share the collector's origin so worker lanes, coordinator lane
            // and phase offsets all sit on one time base across phases.
            origin: hostprof::origin().unwrap_or_else(Instant::now),
            commit_ns: 0,
            coord_drain_ns: 0,
            barrier_ns: 0,
            epochs: 0,
            parallel_epochs: 0,
            chan_commits: 0,
            ru_ledger_commits: 0,
            ru_shared: vec![0; num_rus],
            coord: WorkerLane::new(0),
        }
    }

    #[inline]
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// Nanoseconds since `origin` — the worker threads' clock (they hold a copy of
/// the coordinator's origin instant, not the thread-local collector).
#[inline]
fn ns_since(origin: Instant) -> u64 {
    origin.elapsed().as_nanos() as u64
}

/// Epoch drain strategy for [`par_commit_loop`]: advance every RU in the given
/// index list (all classified Local) to its Shared frontier, folding results
/// into the context and raising each RU's gate as it goes. The [`ParProf`] is
/// threaded through so the strategy can time itself without capturing the
/// profiler (which the loop also borrows).
type EpochDrain<'c> = dyn FnMut(&mut PhaseCtx, &mut [Cycle], &[usize], &mut ParProf) + 'c;

/// The coordinator's commit loop, shared by the single-threaded and threaded
/// configurations of [`drive_par`] (only the epoch `drain` strategy differs).
///
/// Invariant: every unfinished RU is in exactly one place — the `locals` drain
/// list, the channel ledger, or the RU ledger. Each iteration first drains all
/// Local runs (they commute — see [`drive_par`]), re-parking each drained RU
/// at its Shared frontier, then commits the single earliest parked Shared
/// event across both ledgers in `(gate ⊔ time, RU)` order — exactly the
/// serial drivers' pop order over Shared events (see [`drive_par`]).
fn par_commit_loop(
    ctx: &mut PhaseCtx,
    gates: &mut [Cycle],
    chan: &mut ChannelQueues<u32>,
    ru_parked: &mut ShardedEventQueue<u32>,
    locals: &mut Vec<usize>,
    prof: &mut ParProf,
    drain: &mut EpochDrain<'_>,
) {
    loop {
        while !locals.is_empty() {
            prof.epochs += 1;
            drain(ctx, gates, locals, prof);
            let drained = std::mem::take(locals);
            for i in drained {
                park(ctx, i, gates[i], chan, ru_parked, locals);
            }
            debug_assert!(locals.is_empty(), "drain_local left an RU Local");
        }
        let t0 = if prof.on { prof.now_ns() } else { 0 };
        // Commit the earliest Shared event across both ledgers. The key's RU
        // index is globally unique — an RU has one live entry in one ledger —
        // so the `(gate, raw, RU)` comparison is a total order.
        let (next, from_chan) = {
            let a = chan.peek_min();
            let b = ru_parked.horizon(|_, _| true);
            match (a, b) {
                (None, None) => (None, false),
                (Some(_), None) => (chan.pop_min(), true),
                (None, Some(_)) => (ru_parked.pop_min_valid(|_, _| true), false),
                (Some(x), Some(y)) => {
                    if x < y {
                        (chan.pop_min(), true)
                    } else {
                        (ru_parked.pop_min_valid(|_, _| true), false)
                    }
                }
            }
        };
        let Some((_, g, iu)) = next else {
            break; // no Local work, no parked Shared events: all RUs done
        };
        let i = iu as usize;
        gates[i] = g; // g = gate.max(raw) from park — the serial pop key
        let step_idx = earliest_step(&ctx.states[i]);
        ctx.out.events += 1;
        ctx.process(i, step_idx);
        park(ctx, i, gates[i], chan, ru_parked, locals);
        if from_chan {
            prof.chan_commits += 1;
        } else {
            prof.ru_ledger_commits += 1;
        }
        prof.ru_shared[i] += 1;
        if prof.on {
            prof.commit_ns += prof.now_ns() - t0;
        }
    }
}

/// A raw handle to one RU's mutable simulation state, parceled out to exactly
/// one thread for one epoch.
struct RuPtr {
    ru: *mut RasterUnit,
    st: *mut RuState,
    gate: *mut Cycle,
    /// Global RU index, for the per-RU occupancy telemetry.
    idx: usize,
}

// Safety: an `RuPtr` is dereferenced only by the thread whose epoch chunk it
// was placed in (see [`Exchange`]), so moving it across threads is sound.
unsafe impl Send for RuPtr {}

/// The epoch assignment table shared between the coordinator and its workers.
///
/// Slot `w` holds the chunk of Local RUs thread `w` drains this epoch (slot 0
/// is the coordinator's own chunk).
///
/// # Safety protocol
/// All access is phased by the two [`Barrier`]s in [`drive_par`]:
/// * between an end barrier and the next start barrier the workers are parked,
///   and the coordinator has exclusive access to the table and to every RU;
/// * between a start barrier and the matching end barrier each thread reads
///   only its own slot and dereferences only the [`RuPtr`]s in it — the slots
///   partition the epoch's Local RUs, so no RU is reachable from two threads.
///
/// The barriers establish the happens-before edges that make the handoff of
/// the table contents (and of the RU state behind the pointers) data-race
/// free.
struct Exchange {
    assign: UnsafeCell<Vec<Vec<RuPtr>>>,
}

// Safety: see the protocol above — the barrier discipline rules out
// concurrent conflicting access through the cell.
unsafe impl Sync for Exchange {}

impl Exchange {
    fn new(slots: usize) -> Self {
        Self {
            assign: UnsafeCell::new((0..slots).map(|_| Vec::new()).collect()),
        }
    }
}

/// The intra-frame parallel driver (`LIBRA_EVENT_LOOP=par`): the event core
/// sharded by Raster Unit (plus a DRAM-channel ledger for memory-blocked
/// events), advanced in epochs and merged bit-identically to [`drive_heap`].
///
/// **Why the result is bit-identical to the serial drivers.** Every micro-
/// event is classified ([`classify`]) as Local or Shared via the same branch
/// selector the executor uses. Local events read and write only their RU's
/// private state, so runs of Local events on *different* RUs commute: running
/// them concurrently (or in any serial order) yields the same per-RU state
/// and the same commutatively-merged counters. Within one RU, events always
/// run in the serial order ([`drain_local`] is a strictly sequential loop that
/// parks at the first Shared event).
///
/// Shared events are committed one at a time by the coordinator in
/// `(gate, RU index)` order, where an RU's *gate* is the running maximum of
/// its pop keys (each event's `next_time` at selection) and a parked event's
/// gate is `gate ⊔ its own raw time`. The gate — not the raw time — is the
/// serial merge key because per-RU pop keys are **not monotone**: a tile
/// promotion or a freed warp slot can expose *back-dated* work (an event whose
/// `next_time` is earlier than the event that revealed it). The serial drivers
/// merge on each RU's *current head*, so back-dated events stay hidden behind
/// the later-keyed event that drags them — RU `i`'s head sits at the drag key
/// `k` until every other RU's head reaches `k`, and only then does the
/// back-dated run pop. Merging parked events by `(gate, RU)` reproduces this
/// exactly: an inductive reachability argument shows two parked heads can
/// disagree between raw-key order and gate order only in states the serial
/// merge can never reach (for RU `i`'s gate to exceed RU `j`'s, `j`'s head
/// must already have passed `i`'s gate-opening key), and on gate ties the
/// RU-index tie-break matches the serial drivers' — the gate-opening events
/// tie at the same raw key, and each RU's dragged run pops immediately after
/// its own opener. Committing one RU's event never changes another RU's next
/// event (the invariant [`drive_heap`] already relies on), so the Shared
/// commit sequence equals the serial drivers' Shared subsequence. Since all
/// contention-carrying state (L2/DRAM, frame plan, trace stream, steal
/// targets) is touched only by Shared events, in the same order with the same
/// inputs, every counter, timestamp, and trace record matches the serial loop
/// bit-for-bit — the epoch *horizon* (the earliest parked Shared gate) only
/// bounds when threads synchronise, never what they compute.
///
/// Threading: `threads <= 1` runs everything inline with zero spawns.
/// Otherwise one [`std::thread::scope`] hosts `threads - 1` persistent
/// workers; each epoch with two or more Local RUs round-robins them over the
/// thread slots through the [`Exchange`] table between a start and an end
/// [`Barrier`], and the coordinator (always the main thread — trace emission
/// stays thread-invariant) drains slot 0. Traces are only ever written from
/// Shared commits on the coordinator, so trace streams are identical at every
/// thread count.
fn drive_par(ctx: &mut PhaseCtx, threads: usize) {
    let n = ctx.states.len();
    let slots = threads.max(1).min(n.max(1));
    let num_tiles = ctx.cfg.screen.num_tiles();
    let mut prof = ParProf::new(n);
    let phase_start_ns = if prof.on { prof.now_ns() } else { 0 };

    let mut chan: ChannelQueues<u32> = ChannelQueues::new(ctx.hier.dram_channels());
    let mut ru_parked: ShardedEventQueue<u32> = ShardedEventQueue::new(n.max(1));
    let mut locals: Vec<usize> = Vec::new();
    let mut gates: Vec<Cycle> = vec![0; n];
    for i in 0..n {
        park(ctx, i, 0, &mut chan, &mut ru_parked, &mut locals);
    }

    if slots <= 1 {
        let mut scratch = ParScratch::new(num_tiles, n);
        par_commit_loop(
            ctx,
            &mut gates,
            &mut chan,
            &mut ru_parked,
            &mut locals,
            &mut prof,
            &mut |ctx, gates, ls, prof| {
                let t0 = if prof.on { prof.now_ns() } else { 0 };
                for &i in ls {
                    drain_local_inline(ctx, i, &mut scratch, &mut gates[i]);
                }
                if prof.on {
                    prof.coord_drain_ns += prof.now_ns() - t0;
                }
            },
        );
        if prof.on {
            record_par_phase(prof, phase_start_ns, slots, &chan, &ru_parked, &[&scratch], Vec::new());
        }
        absorb_scratch(ctx, scratch);
        return;
    }

    let done = AtomicBool::new(false);
    let start = Barrier::new(slots);
    let end = Barrier::new(slots);
    let exchange = Exchange::new(slots);
    let ideal = ctx.hier.ideal;
    let max_warps = ctx.max_warps;
    let prof_on = prof.on;
    let origin = prof.origin;
    let mut coord_scratch = ParScratch::new(num_tiles, n);

    let worker_results: Vec<(ParScratch, WorkerLane)> = std::thread::scope(|s| {
        let handles: Vec<_> = (1..slots)
            .map(|w| {
                let (exchange, start, end, done) = (&exchange, &start, &end, &done);
                let mut scratch = ParScratch::new(num_tiles, n);
                s.spawn(move || {
                    let mut lane = WorkerLane::new(w);
                    loop {
                        let park0 = if prof_on { ns_since(origin) } else { 0 };
                        start.wait();
                        if done.load(Ordering::Acquire) {
                            break;
                        }
                        let t1 = if prof_on {
                            let t = ns_since(origin);
                            lane.wait_ns += t - park0;
                            t
                        } else {
                            0
                        };
                        // Safety: between the start and end barriers slot `w`
                        // is exclusively this worker's ([`Exchange`] protocol).
                        unsafe {
                            let assign: &Vec<Vec<RuPtr>> = &*exchange.assign.get();
                            for p in &assign[w] {
                                drain_local(
                                    &mut *p.ru,
                                    &mut *p.st,
                                    &mut scratch,
                                    &mut *p.gate,
                                    p.idx,
                                    max_warps,
                                    ideal,
                                );
                            }
                        }
                        if prof_on {
                            let t2 = ns_since(origin);
                            lane.busy_ns += t2 - t1;
                            lane.epochs += 1;
                            lane.push_span("epoch", t1, t2);
                        }
                        end.wait();
                    }
                    lane.local_events = scratch.out.events;
                    (scratch, lane)
                })
            })
            .collect();

        par_commit_loop(
            ctx,
            &mut gates,
            &mut chan,
            &mut ru_parked,
            &mut locals,
            &mut prof,
            &mut |ctx, gates, ls, prof| {
                if ls.len() < 2 {
                    let t0 = if prof.on { prof.now_ns() } else { 0 };
                    for &i in ls {
                        drain_local_inline(ctx, i, &mut coord_scratch, &mut gates[i]);
                    }
                    if prof.on {
                        prof.coord_drain_ns += prof.now_ns() - t0;
                    }
                    return;
                }
                prof.parallel_epochs += 1;
                // Parallel epoch: round-robin the Local RUs over the slots,
                // then release the workers. The pointers are taken fresh from
                // the context each epoch and die at the end barrier.
                let rp = ctx.rus.as_mut_ptr();
                let sp = ctx.states.as_mut_ptr();
                let gp = gates.as_mut_ptr();
                // Safety: the workers are parked at the start barrier, so the
                // coordinator owns the table; each RU lands in exactly one
                // slot.
                unsafe {
                    let assign = &mut *exchange.assign.get();
                    for v in assign.iter_mut() {
                        v.clear();
                    }
                    for (k, &i) in ls.iter().enumerate() {
                        assign[k % slots].push(RuPtr {
                            ru: rp.add(i),
                            st: sp.add(i),
                            gate: gp.add(i),
                            idx: i,
                        });
                    }
                }
                let tb0 = if prof.on { prof.now_ns() } else { 0 };
                start.wait();
                let td0 = if prof.on { prof.now_ns() } else { 0 };
                // Safety: slot 0 is the coordinator's exclusive chunk this
                // epoch.
                unsafe {
                    let assign: &Vec<Vec<RuPtr>> = &*exchange.assign.get();
                    for p in &assign[0] {
                        drain_local(
                            &mut *p.ru,
                            &mut *p.st,
                            &mut coord_scratch,
                            &mut *p.gate,
                            p.idx,
                            max_warps,
                            ideal,
                        );
                    }
                }
                let td1 = if prof.on { prof.now_ns() } else { 0 };
                end.wait();
                if prof.on {
                    let tb1 = prof.now_ns();
                    prof.coord_drain_ns += td1 - td0;
                    prof.barrier_ns += (td0 - tb0) + (tb1 - td1);
                    prof.coord.epochs += 1;
                    prof.coord.push_span("epoch", td0, td1);
                }
            },
        );

        done.store(true, Ordering::Release);
        start.wait();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel raster worker panicked"))
            .collect()
    });

    if prof.on {
        let scratches: Vec<&ParScratch> = std::iter::once(&coord_scratch)
            .chain(worker_results.iter().map(|(s, _)| s))
            .collect();
        let lanes: Vec<WorkerLane> = worker_results.iter().map(|(_, l)| l.clone()).collect();
        record_par_phase(prof, phase_start_ns, slots, &chan, &ru_parked, &scratches, lanes);
    }

    absorb_scratch(ctx, coord_scratch);
    for (s, _) in worker_results {
        absorb_scratch(ctx, s);
    }
}

/// Assembles the phase's [`PhaseProfile`] from the commit-loop profiler, the
/// ledgers' lifetime counters and every thread's scratch (coordinator first),
/// and publishes it to the thread-local [`hostprof`] collector. Only called
/// when profiling is enabled; pure observation — nothing here feeds back into
/// simulated state.
fn record_par_phase(
    prof: ParProf,
    phase_start_ns: u64,
    slots: usize,
    chan: &ChannelQueues<u32>,
    ru_parked: &ShardedEventQueue<u32>,
    scratches: &[&ParScratch],
    workers: Vec<WorkerLane>,
) {
    let wall_ns = prof.now_ns().saturating_sub(phase_start_ns);
    let mut p = PhaseProfile::new("raster", slots, prof.ru_shared.len());
    p.start_ns = phase_start_ns;
    p.wall_ns = wall_ns;
    p.commit_ns = prof.commit_ns;
    p.coord_drain_ns = prof.coord_drain_ns;
    p.barrier_ns = prof.barrier_ns;
    p.epochs = prof.epochs;
    p.parallel_epochs = prof.parallel_epochs;
    p.chan_commits = prof.chan_commits;
    p.ru_ledger_commits = prof.ru_ledger_commits;
    p.shared_commits = prof.chan_commits + prof.ru_ledger_commits;
    p.chan_pushed = chan.total_pushed();
    p.chan_drained = chan.total_drained();
    p.ru_pushed = ru_parked.total_pushed();
    p.ru_drained = ru_parked.total_drained();
    for (dst, src) in p.ru_events.iter_mut().zip(&prof.ru_shared) {
        *dst += src;
    }
    for s in scratches {
        p.local_events += s.out.events;
        for (dst, src) in p.ru_events.iter_mut().zip(&s.ru_events) {
            *dst += src;
        }
        for (dst, src) in p.run_lengths.iter_mut().zip(&s.run_lengths) {
            *dst += src;
        }
    }
    p.coord = prof.coord;
    p.coord.local_events = scratches.first().map_or(0, |s| s.out.events);
    p.workers = workers;
    hostprof::record_phase(p);
}

/// Runs the raster phase from cycle 0 until every tile in `plan` has been rendered
/// and flushed. The event loop driver is selected per [`event_loop::mode`]; both
/// drivers produce bit-identical results. `mech` selects the optional mechanism
/// axis: with `wasp` enabled each tile's warp queue is re-ordered (spearhead +
/// criticality) at front-end completion; `re` does not act here — eliminated
/// tiles were already filtered out of `plan`.
pub fn run_raster_phase(
    cfg: &GpuConfig,
    rus: &mut [RasterUnit],
    hier: &mut MemoryHierarchy,
    plan: &mut FramePlan,
    prims: &TriangleStream,
    bins: &TileBins,
    mech: MechanismSpec,
) -> RasterPhaseResult {
    let ru_count = rus.len();
    let states: Vec<RuState> = rus
        .iter()
        .map(|ru| RuState {
            tiles: VecDeque::new(),
            fe_ready: None,
            fe_time: 0,
            pending: VecDeque::new(),
            inflight: Vec::new(),
            core_load: vec![0; ru.num_cores()],
            slot_gate: 0,
            cur_tile: None,
            frag_gate: 0,
            last_flush_done: 0,
            frag_start: 0,
            tile_last: 0,
            no_more_groups: false,
        })
        .collect();
    let mut ctx = PhaseCtx {
        cfg,
        max_warps: cfg.max_warps_per_core,
        rus,
        hier,
        plan,
        prims,
        bins,
        mech,
        states,
        out: RasterPhaseResult {
            heatmap: TileHeatmap::new(cfg.screen.num_tiles()),
            ru_finish: vec![0; ru_count],
            ..RasterPhaseResult::default()
        },
        unique: U64Set::default(),
        frame_end: 0,
    };

    match event_loop::mode() {
        EventLoopMode::Heap => drive_heap(&mut ctx),
        EventLoopMode::Scan => drive_scan(&mut ctx),
        EventLoopMode::Par => drive_par(&mut ctx, event_loop::sim_threads()),
    }

    let mut out = ctx.out;
    out.unique_lines = ctx.unique.len() as u64;
    out.raster_cycles = ctx.frame_end;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra::scheduler::SchedulerKind;
    use tbr_common::config::ScreenConfig;
    use tbr_geom::pipeline::process_scene_stream;
    use tbr_tiling::binner::bin_stream;
    use tbr_workloads::{suite, SceneGenerator};

    fn run(cfg: &GpuConfig, kind: SchedulerKind) -> RasterPhaseResult {
        run_mech(cfg, kind, MechanismSpec::default())
    }

    fn run_mech(cfg: &GpuConfig, kind: SchedulerKind, mech: MechanismSpec) -> RasterPhaseResult {
        let p = suite().remove(0);
        let scene = SceneGenerator::new(&p, &cfg.screen).scene(0);
        let (tris, _) = process_scene_stream(&scene, &cfg.screen);
        let bins = bin_stream(&tris, &cfg.screen);
        let mut hier = MemoryHierarchy::new(cfg.l2_cache, cfg.dram, cfg.dram_interval_cycles);
        hier.ideal = cfg.ideal_memory;
        let mut rus: Vec<RasterUnit> = (0..cfg.num_raster_units)
            .map(|_| RasterUnit::new(cfg))
            .collect();
        let mut sched = kind.build();
        let mut plan = sched.plan_frame(&cfg.screen, None);
        run_raster_phase(cfg, &mut rus, &mut hier, &mut plan, &tris, &bins, mech)
    }

    #[test]
    fn scan_heap_and_par_drivers_agree_bit_for_bit() {
        // The crate-level face of the differential oracle: the full phase
        // result (timing, heatmap, every counter) must be identical under
        // all three drivers, and under `par` at every thread count.
        // `tests/event_loop_diff.rs` and `tests/parallel_core_diff.rs` widen
        // this to whole simulated sequences.
        let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
        for kind in [SchedulerKind::Libra, SchedulerKind::Scanline] {
            event_loop::set_mode(Some(EventLoopMode::Scan));
            let scan = run(&cfg, kind);
            event_loop::set_mode(Some(EventLoopMode::Heap));
            let heap = run(&cfg, kind);
            event_loop::set_mode(Some(EventLoopMode::Par));
            for threads in [1usize, 2, 4] {
                event_loop::set_sim_threads(Some(threads));
                let par = run(&cfg, kind);
                assert_eq!(heap, par, "par@{threads} diverged under {kind:?}");
            }
            event_loop::set_sim_threads(None);
            event_loop::set_mode(None);
            assert_eq!(scan, heap, "drivers diverged under {kind:?}");
            assert!(scan.events > 0);
        }
    }

    #[test]
    fn wasp_reorders_warps_yet_drivers_still_agree_bit_for_bit() {
        // The WaSP reorder happens at FrontEnd events, which are Shared in
        // every driver, so the mechanism must not break scan ≡ heap ≡ par.
        let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
        let mech = MechanismSpec::parse("wasp").unwrap();
        event_loop::set_mode(Some(EventLoopMode::Scan));
        let scan = run_mech(&cfg, SchedulerKind::Libra, mech);
        event_loop::set_mode(Some(EventLoopMode::Heap));
        let heap = run_mech(&cfg, SchedulerKind::Libra, mech);
        event_loop::set_mode(Some(EventLoopMode::Par));
        for threads in [1usize, 2, 4] {
            event_loop::set_sim_threads(Some(threads));
            let par = run_mech(&cfg, SchedulerKind::Libra, mech);
            assert_eq!(heap, par, "wasp par@{threads} diverged");
        }
        event_loop::set_sim_threads(None);
        event_loop::set_mode(None);
        assert_eq!(scan, heap, "wasp drivers diverged");
        assert!(scan.wasp_engaged_tiles > 0, "wasp never engaged on a cold cache");
        assert!(scan.wasp_spearhead_warps > 0);
        // Same functional work as the mechanism-off run, different timing axis.
        let base = run(&cfg, SchedulerKind::Libra);
        assert_eq!(base.fragments, scan.fragments);
        assert_eq!(base.wasp_engaged_tiles, 0, "counters must stay 0 when off");
    }

    #[test]
    fn all_tiles_rendered_and_flushed() {
        let cfg = GpuConfig::baseline(ScreenConfig::tiny());
        let r = run(&cfg, SchedulerKind::SingleZOrder);
        assert!(r.raster_cycles > 0);
        assert!(r.fragments > 0);
        assert!(r.warps > 0);
        // Every tile flushes 64 FB lines, so every tile has DRAM attribution.
        for (i, t) in r.heatmap.tiles.iter().enumerate() {
            assert!(
                t.dram_accesses >= 32,
                "tile {i} missing flush writes: {t:?}"
            );
        }
    }

    #[test]
    fn two_rus_are_faster_than_one_with_same_total_cores() {
        let screen = ScreenConfig::tiny();
        let single = run(&GpuConfig::baseline(screen), SchedulerKind::SingleZOrder);
        let dual = run(
            &GpuConfig::libra(screen, 2),
            SchedulerKind::InterleavedZOrder,
        );
        // Same functional work:
        assert_eq!(single.fragments, dual.fragments);
        // PTR parallelises the per-tile pipeline; on this heavily memory-bound
        // micro-scene the extra concurrency can congest DRAM (the paper's own
        // observation, Â§III-A), so allow a modest regression but no collapse.
        assert!(
            (dual.raster_cycles as f64) < (single.raster_cycles as f64) * 1.15,
            "PTR {} vs single {}",
            dual.raster_cycles,
            single.raster_cycles
        );
    }

    #[test]
    fn ideal_memory_is_faster_and_dram_free() {
        let screen = ScreenConfig::tiny();
        let real = run(&GpuConfig::baseline(screen), SchedulerKind::SingleZOrder);
        let ideal = run(
            &GpuConfig::baseline(screen).with_ideal_memory(),
            SchedulerKind::SingleZOrder,
        );
        assert!(ideal.raster_cycles < real.raster_cycles);
        assert_eq!(ideal.fill_lines, 0);
    }

    #[test]
    fn deterministic() {
        let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
        let a = run(&cfg, SchedulerKind::Libra);
        let b = run(&cfg, SchedulerKind::Libra);
        assert_eq!(a, b);
    }

    #[test]
    fn instructions_attributed_to_tiles_sum_to_total() {
        let cfg = GpuConfig::baseline(ScreenConfig::tiny());
        let r = run(&cfg, SchedulerKind::SingleZOrder);
        let per_tile: u64 = r.heatmap.tiles.iter().map(|t| t.instructions).sum();
        assert_eq!(per_tile, r.instructions);
        let warp_sum: u64 = r.heatmap.tiles.iter().map(|t| t.warps).sum();
        assert_eq!(warp_sum, r.warps);
    }

    #[test]
    fn more_warp_slots_never_hurt() {
        let screen = ScreenConfig::tiny();
        let narrow = {
            let mut c = GpuConfig::baseline(screen);
            c.max_warps_per_core = 2;
            run(&c, SchedulerKind::SingleZOrder)
        };
        let wide = run(&GpuConfig::baseline(screen), SchedulerKind::SingleZOrder);
        assert!(wide.raster_cycles <= narrow.raster_cycles);
    }

    #[test]
    fn tile_pipeline_overlaps_fe_with_fragments() {
        // The sum of per-tile FE and fragment occupancies exceeds the wall-clock
        // raster time whenever the two stages overlap — which they must on a
        // fragment-heavy scene.
        let cfg = GpuConfig::baseline(ScreenConfig::tiny());
        let r = run(&cfg, SchedulerKind::SingleZOrder);
        assert!(
            r.fe_cycles + r.drain_cycles + r.flush_cycles > r.raster_cycles,
            "no overlap: fe={} drain={} flush={} wall={}",
            r.fe_cycles,
            r.drain_cycles,
            r.flush_cycles,
            r.raster_cycles
        );
    }
}
