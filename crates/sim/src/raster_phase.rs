//! The event-driven Raster Pipeline: N Raster Units rendering tiles in parallel.
//!
//! Each Raster Unit is a two-stage *tile pipeline*, matching §III-A: "there are
//! barriers between stages, so a tile cannot proceed to a given stage until the
//! preceding tile has completed that stage". Concretely:
//!
//! * the **front-end** (Parameter-Buffer fetch → rasterise → Early-Z) of tile *i + 1*
//!   runs while the **fragment stage** of tile *i* is still shading;
//! * the fragment stage of tile *i + 1* only starts once tile *i*'s fragments have
//!   completed and its Colour Buffer has been flushed (single buffer per RU).
//!
//! Warps execute *steppably* — one texture-sample stage per event — and a global
//! scheduler loop always advances the micro-event with the earliest timestamp across
//! all RUs and cores. This gives the two properties the study depends on: warps on a
//! core overlap (latency hiding), and accesses to the shared L2/DRAM from different
//! RUs interleave in causal time order (faithful cross-RU contention).
//!
//! Warp slots (`max_warps_per_core`) gate admission: when a core's slots are full,
//! new warps wait for a retirement — why low-workload tiles cannot fill wide cores
//! (the Fig 4 effect).

use std::collections::VecDeque;

use tbr_common::fasthash::U64Set;

use libra::scheduler::FramePlan;
use tbr_common::config::GpuConfig;
use tbr_common::event_queue::EventQueue;
use tbr_common::ids::{RasterUnitId, TileId};
use tbr_common::stats::TileHeatmap;
use tbr_common::trace::{self, Track};
use tbr_common::Cycle;
use tbr_geom::pipeline::ScreenTriangle;
use tbr_mem::hierarchy::MemoryHierarchy;
use tbr_raster::raster_unit::{RasterUnit, WarpWork};
use tbr_raster::shader::WarpExecState;
use tbr_tiling::binner::TileBins;

use crate::event_loop::{self, EventLoopMode};

/// Aggregate output of one frame's raster phase.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RasterPhaseResult {
    /// Cycles from phase start to the last warp/flush completion.
    pub raster_cycles: Cycle,
    /// Per-tile DRAM/instruction attribution (LIBRA's profile and Fig 2's heatmap).
    pub heatmap: TileHeatmap,
    /// Fragments shaded.
    pub fragments: u64,
    /// Fragments killed by Early-Z.
    pub earlyz_killed: u64,
    /// Warps executed.
    pub warps: u64,
    /// SIMD instructions executed.
    pub instructions: u64,
    /// Line-granular texture requests.
    pub tex_requests: u64,
    /// Sum of texture request latencies.
    pub tex_latency_sum: u64,
    /// Texture lines filled into L1s (with cross-core duplicates).
    pub fill_lines: u64,
    /// Distinct texture lines touched frame-wide.
    pub unique_lines: u64,
    /// Sum over tiles of front-end occupancy (fetch + rasterise + Early-Z).
    pub fe_cycles: u64,
    /// Sum over tiles of fragment-stage occupancy (start to last warp retired).
    pub drain_cycles: u64,
    /// Sum over tiles of colour-buffer flush issue time.
    pub flush_cycles: u64,
    /// Cycle at which each Raster Unit finished its last tile (load balance).
    pub ru_finish: Vec<Cycle>,
    /// Micro-events processed by the event loop (one per scheduler decision).
    /// Identical between the heap and scan drivers; the throughput benchmark
    /// divides wall-clock by this to get ns/event.
    pub events: u64,
}

#[derive(Debug)]
struct InFlight {
    warp: WarpWork,
    exec: WarpExecState,
    core: usize,
}

/// A tile whose front-end has completed, parked until the fragment stage frees up.
#[derive(Debug)]
struct FeReady {
    tile: TileId,
    fe_done: Cycle,
    warps: VecDeque<WarpWork>,
}

#[derive(Debug)]
struct RuState {
    tiles: VecDeque<TileId>,
    fe_ready: Option<FeReady>,
    fe_time: Cycle,
    pending: VecDeque<WarpWork>,
    inflight: Vec<InFlight>,
    core_load: Vec<usize>,
    /// When the RU was fully occupied, the retirement that freed a slot gates the
    /// next admission to its completion time (consumed by that admission).
    slot_gate: Cycle,
    cur_tile: Option<TileId>,
    /// When the fragment stage may take the next tile: previous tile's fragments
    /// done AND the double-buffered Colour Buffer's older half flushed.
    frag_gate: Cycle,
    /// Flush completion of the most recently flushed tile (gates the tile after
    /// next, since the Colour Buffer is double-buffered).
    last_flush_done: Cycle,
    /// When the fragment stage of the current tile started (for accounting).
    frag_start: Cycle,
    /// Last warp completion of the current tile.
    tile_last: Cycle,
    no_more_groups: bool,
}

impl RuState {
    fn has_free_slot(&self, max_warps: usize) -> bool {
        self.core_load.iter().any(|&l| l < max_warps)
    }

    fn fragment_stage_idle(&self) -> bool {
        self.pending.is_empty() && self.inflight.is_empty() && self.cur_tile.is_none()
    }

    fn finished(&self) -> bool {
        self.no_more_groups
            && self.tiles.is_empty()
            && self.fe_ready.is_none()
            && self.fragment_stage_idle()
    }

    /// Earliest micro-event this RU can process, if any.
    fn next_time(&self, max_warps: usize) -> Option<Cycle> {
        if self.finished() {
            return None;
        }
        let mut t: Option<Cycle> = None;
        let mut consider = |c: Cycle| t = Some(t.map_or(c, |x: Cycle| x.min(c)));
        if let Some(w) = self.pending.front() {
            if self.has_free_slot(max_warps) {
                consider(w.arrival.max(self.frag_gate).max(self.slot_gate));
            }
        }
        for f in &self.inflight {
            consider(f.exec.ready_at());
        }
        if let Some(r) = &self.fe_ready {
            if self.fragment_stage_idle() {
                // Promotion of the parked tile into the fragment stage.
                consider(self.frag_gate.max(r.fe_done));
            }
        }
        if self.fe_ready.is_none() && !(self.no_more_groups && self.tiles.is_empty()) {
            consider(self.fe_time); // front-end of the next tile
        }
        t
    }
}

/// What processing one event changed about the RU's in-flight warp set — exactly
/// the information the indexed driver needs to update its per-RU warp queue
/// incrementally (the scan driver ignores it).
#[derive(Debug, Clone, Copy)]
enum Effect {
    /// The warp at `idx` stepped and stays in flight with a new ready time.
    Stepped { idx: usize },
    /// The warp at `idx` retired. Removal is `swap_remove`, so the former last
    /// warp (if any) now lives at `idx`; its queue entry under the old position
    /// lazily invalidates.
    Retired { idx: usize },
    /// A pending warp was admitted at the back of `inflight`.
    Admitted,
    /// Promotion / front-end / steal / finish: the in-flight set is unchanged.
    Other,
}

/// Everything one frame's raster phase threads through its event loop. The
/// branch semantics live in [`PhaseCtx::process`]; the *order* in which events
/// are selected lives in the drivers ([`drive_scan`] / [`drive_heap`]), which
/// must agree bit-identically.
struct PhaseCtx<'a> {
    cfg: &'a GpuConfig,
    max_warps: usize,
    rus: &'a mut [RasterUnit],
    hier: &'a mut MemoryHierarchy,
    plan: &'a mut FramePlan,
    prims: &'a [ScreenTriangle],
    bins: &'a TileBins,
    states: Vec<RuState>,
    out: RasterPhaseResult,
    unique: U64Set,
    frame_end: Cycle,
    /// Scratch for the per-tile primitive list (reused across tiles).
    prim_scratch: Vec<&'a ScreenTriangle>,
}

impl<'a> PhaseCtx<'a> {
    /// Processes one micro-event on RU `i`. `step_idx` is the earliest in-flight
    /// warp as `(vector position, ready time)` — lowest position among ties —
    /// supplied by the driver (scan: `min_by_key`; heap: warp-queue peek).
    ///
    /// Branch priority (the spec both drivers reproduce): step the earliest warp
    /// when it ties-or-beats every other candidate; else admit a pending warp;
    /// else promote a parked tile; else run the front-end / steal / finish.
    fn process(&mut self, i: usize, step_idx: Option<(usize, Cycle)>) -> Effect {
        let Self {
            cfg, max_warps, rus, hier, plan, prims, bins, states, out, unique, frame_end,
            prim_scratch,
        } = self;
        let max_warps = *max_warps;
        let st = &mut states[i];

        // 1) Step the earliest in-flight warp if it is the earliest event.
        let other_min = {
            let mut t: Option<Cycle> = None;
            let mut consider = |c: Cycle| t = Some(t.map_or(c, |x: Cycle| x.min(c)));
            if let Some(w) = st.pending.front() {
                if st.has_free_slot(max_warps) {
                    consider(w.arrival.max(st.frag_gate).max(st.slot_gate));
                }
            }
            if let Some(r) = &st.fe_ready {
                if st.fragment_stage_idle() {
                    consider(st.frag_gate.max(r.fe_done));
                }
            }
            if st.fe_ready.is_none() && !(st.no_more_groups && st.tiles.is_empty()) {
                consider(st.fe_time);
            }
            t
        };

        if let Some((idx, t)) = step_idx {
            if other_min.is_none_or(|o| t <= o) {
                let done = {
                    let InFlight { warp, exec, core } = &mut st.inflight[idx];
                    rus[i].step_warp_on(*core, warp, exec, hier)
                };
                if !done {
                    return Effect::Stepped { idx };
                }
                let was_full = !st.has_free_slot(max_warps);
                let f = st.inflight.swap_remove(idx);
                let o = f.exec.outcome;
                out.warps += 1;
                out.instructions += o.instructions;
                out.tex_requests += o.tex_requests;
                out.tex_latency_sum += o.tex_latency_sum;
                out.fill_lines += o.fills.len() as u64;
                unique.extend(o.fills.iter().copied());
                let tally = out.heatmap.tally_mut(f.warp.tile);
                tally.instructions += o.instructions;
                tally.dram_accesses += o.dram_accesses;
                tally.warps += 1;
                st.core_load[f.core] -= 1;
                if was_full {
                    st.slot_gate = st.slot_gate.max(o.completion);
                }
                st.tile_last = st.tile_last.max(o.completion);

                if st.pending.is_empty() && st.inflight.is_empty() {
                    // Fragment stage done: flush asynchronously (double-buffered
                    // Colour Buffer — the flush only gates the tile after next).
                    let tile = st.cur_tile.take().expect("warps imply a current tile");
                    let flush_start = st.tile_last;
                    out.drain_cycles += flush_start.saturating_sub(st.frag_start);
                    if trace::is_enabled() {
                        trace::span(
                            Track::RuFragment(i as u8),
                            format!("tile {}", tile.0),
                            st.frag_start,
                            flush_start,
                        );
                    }
                    let (flush_done, last_write, writes) =
                        rus[i].flush_tile(tile, &cfg.screen, flush_start, hier);
                    out.flush_cycles += flush_done - flush_start;
                    if trace::is_enabled() {
                        trace::span(
                            Track::RuFlush(i as u8),
                            format!("flush {}", tile.0),
                            flush_start,
                            flush_done,
                        );
                    }
                    out.heatmap.tally_mut(tile).dram_accesses += writes;
                    st.frag_gate = flush_start.max(st.last_flush_done);
                    st.last_flush_done = flush_done;
                    st.slot_gate = 0;
                    out.ru_finish[i] = out.ru_finish[i].max(last_write).max(flush_start);
                    *frame_end = (*frame_end).max(last_write).max(flush_start);
                }
                return Effect::Retired { idx };
            }
        }

        // 2) Admit a pending warp into a core slot.
        if let Some(w) = st.pending.front() {
            if st.has_free_slot(max_warps) {
                let start = w.arrival.max(st.frag_gate).max(st.slot_gate);
                if step_idx.is_none_or(|(_, t)| start <= t) {
                    let w = st.pending.pop_front().expect("checked non-empty");
                    let core = (0..st.core_load.len())
                        .filter(|&c| st.core_load[c] < max_warps)
                        .min_by_key(|&c| st.core_load[c])
                        .expect("free slot checked");
                    st.slot_gate = 0;
                    let exec = rus[i].begin_warp_on(core, start);
                    st.core_load[core] += 1;
                    st.inflight.push(InFlight { warp: w, exec, core });
                    return Effect::Admitted;
                }
            }
        }

        // 3) Promote a parked tile into the (idle) fragment stage.
        if st.fragment_stage_idle() {
            if let Some(r) = st.fe_ready.take() {
                let start = st.frag_gate.max(r.fe_done);
                // The front-end unit is free for the next tile from this moment.
                st.fe_time = st.fe_time.max(start);
                if r.warps.is_empty() {
                    // Empty tile: nothing to shade; flush the cleared Colour Buffer.
                    let (flush_done, last_write, writes) =
                        rus[i].flush_tile(r.tile, &cfg.screen, start, hier);
                    out.flush_cycles += flush_done - start;
                    if trace::is_enabled() {
                        trace::span(
                            Track::RuFlush(i as u8),
                            format!("flush {}", r.tile.0),
                            start,
                            flush_done,
                        );
                    }
                    out.heatmap.tally_mut(r.tile).dram_accesses += writes;
                    st.frag_gate = start.max(st.last_flush_done);
                    st.last_flush_done = flush_done;
                    out.ru_finish[i] = out.ru_finish[i].max(last_write);
                    *frame_end = (*frame_end).max(last_write);
                } else {
                    st.cur_tile = Some(r.tile);
                    st.pending = r.warps;
                    st.frag_start = start;
                    st.tile_last = start;
                }
                return Effect::Other;
            }
        }

        // 4) Run the front-end of the next tile.
        if st.fe_ready.is_none() {
            if st.tiles.is_empty() && !st.no_more_groups {
                match plan.next_group(RasterUnitId(i as u8)) {
                    Some(group) => st.tiles.extend(group),
                    None => {
                        // The plan is exhausted. The Tile Fetcher is work-conserving:
                        // tiles are independent (only primitives *within* a tile must
                        // stay on one RU), so an idle RU takes the tail of the busiest
                        // RU's queued tiles instead of idling out the frame.
                        let victim = (0..states.len())
                            .filter(|&j| j != i)
                            .max_by_key(|&j| states[j].tiles.len());
                        let stolen = match victim {
                            Some(j) if states[j].tiles.len() >= 2 => {
                                let keep = states[j].tiles.len() / 2 + 1;
                                states[j].tiles.split_off(keep)
                            }
                            _ => VecDeque::new(),
                        };
                        let st = &mut states[i];
                        if !stolen.is_empty() && trace::is_enabled() {
                            trace::instant_args(
                                Track::Scheduler,
                                "tile steal",
                                st.fe_time,
                                vec![
                                    ("thief", i.to_string()),
                                    ("victim", victim.expect("stolen implies victim").to_string()),
                                    ("tiles", stolen.len().to_string()),
                                ],
                            );
                        }
                        if stolen.is_empty() {
                            st.no_more_groups = true;
                            let finish = st.fe_time.max(st.frag_gate).max(st.last_flush_done);
                            out.ru_finish[i] = out.ru_finish[i].max(finish);
                            *frame_end = (*frame_end).max(finish);
                        } else {
                            st.tiles = stolen;
                        }
                        return Effect::Other;
                    }
                }
            }
            if let Some(tile) = st.tiles.pop_front() {
                let list = bins.list(tile);
                prim_scratch.clear();
                prim_scratch.extend(list.iter().map(|&idx| &prims[idx as usize]));
                let fe_start = st.fe_time;
                let fe =
                    rus[i].render_tile_front_end(tile, prim_scratch, &cfg.screen, st.fe_time, hier);
                out.fe_cycles += fe.fe_done - st.fe_time;
                if trace::is_enabled() {
                    trace::span_args(
                        Track::RuFrontEnd(i as u8),
                        format!("tile {}", tile.0),
                        fe_start,
                        fe.fe_done,
                        vec![
                            ("prims", prim_scratch.len().to_string()),
                            ("fragments", fe.fragments.to_string()),
                        ],
                    );
                }
                out.fragments += fe.fragments;
                out.earlyz_killed += fe.earlyz_killed;
                {
                    let tally = out.heatmap.tally_mut(tile);
                    tally.dram_accesses += fe.dram_accesses;
                    tally.fragments += fe.fragments;
                }
                st.fe_time = fe.fe_done;
                st.fe_ready =
                    Some(FeReady { tile, fe_done: fe.fe_done, warps: fe.warps.into() });
            }
            return Effect::Other;
        }
        unreachable!("event selection offered no processable event");
    }
}

/// The legacy O(RUs × warps)-per-event linear scan — the behavioural oracle the
/// indexed driver is differentially tested against (`LIBRA_EVENT_LOOP=scan`).
fn drive_scan(ctx: &mut PhaseCtx) {
    loop {
        // Pick the RU with the earliest micro-event (strict `<`: lowest index
        // wins ties — the contract the heap driver's key order reproduces).
        let mut best: Option<(usize, Cycle)> = None;
        for (i, st) in ctx.states.iter().enumerate() {
            if let Some(t) = st.next_time(ctx.max_warps) {
                if best.is_none_or(|(_, bt)| t < bt) {
                    best = Some((i, t));
                }
            }
        }
        let Some((i, _event_time)) = best else {
            break; // all RUs done
        };
        let step_idx = ctx.states[i]
            .inflight
            .iter()
            .enumerate()
            .min_by_key(|(_, f)| f.exec.ready_at())
            .map(|(k, f)| (k, f.exec.ready_at()));
        ctx.out.events += 1;
        ctx.process(i, step_idx);
    }
}

/// `next_time` with the in-flight minimum answered by the RU's warp queue
/// instead of a linear pass (must stay semantically identical to
/// [`RuState::next_time`]).
fn next_time_indexed(
    st: &RuState,
    max_warps: usize,
    warps: &mut EventQueue<u32>,
) -> Option<Cycle> {
    if st.finished() {
        return None;
    }
    let mut t: Option<Cycle> = None;
    let mut consider = |c: Cycle| t = Some(t.map_or(c, |x: Cycle| x.min(c)));
    if let Some(w) = st.pending.front() {
        if st.has_free_slot(max_warps) {
            consider(w.arrival.max(st.frag_gate).max(st.slot_gate));
        }
    }
    if let Some((wt, _)) = warps.peek_valid(|wt, k| {
        (k as usize) < st.inflight.len() && st.inflight[k as usize].exec.ready_at() == wt
    }) {
        consider(wt);
    }
    if let Some(r) = &st.fe_ready {
        if st.fragment_stage_idle() {
            consider(st.frag_gate.max(r.fe_done));
        }
    }
    if st.fe_ready.is_none() && !(st.no_more_groups && st.tiles.is_empty()) {
        consider(st.fe_time);
    }
    t
}

/// The indexed next-event driver: a global queue of RUs keyed `(next event
/// time, RU index)` plus one warp queue per RU keyed `(ready time, in-flight
/// position)`. Lexicographic key order makes every pop reproduce the scan's
/// first-minimum tie-break exactly; rescheduled entries invalidate lazily.
///
/// Invariants the [`Effect`] bookkeeping maintains:
/// * every in-flight warp has a queue entry under its current `(ready, pos)` —
///   stale duplicates are harmless because an entry that passes validation is
///   indistinguishable from the live entry with the same key;
/// * `cached[i]` is RU *i*'s current `next_time` and the RU queue holds an
///   entry for it. Processing RU *i* never changes another RU's `next_time`
///   (tile stealing leaves the victim's candidate set untouched: the victim
///   keeps a non-empty tile queue), so only RU *i* is recomputed per event.
fn drive_heap(ctx: &mut PhaseCtx) {
    let n = ctx.states.len();
    let mut warp_queues: Vec<EventQueue<u32>> = (0..n).map(|_| EventQueue::new()).collect();
    let mut cached: Vec<Option<Cycle>> = vec![None; n];
    let mut ru_queue: EventQueue<u32> = EventQueue::with_capacity(n);
    for (i, slot) in cached.iter_mut().enumerate() {
        *slot = ctx.states[i].next_time(ctx.max_warps);
        if let Some(t) = *slot {
            ru_queue.push(t, i as u32);
        }
    }

    while let Some((_, iu)) = ru_queue.pop_valid(|t, k| cached[k as usize] == Some(t)) {
        let i = iu as usize;
        let step_idx = {
            let st = &ctx.states[i];
            warp_queues[i]
                .peek_valid(|t, k| {
                    (k as usize) < st.inflight.len()
                        && st.inflight[k as usize].exec.ready_at() == t
                })
                .map(|(t, k)| (k as usize, t))
        };
        ctx.out.events += 1;
        let effect = ctx.process(i, step_idx);

        let wq = &mut warp_queues[i];
        let st = &ctx.states[i];
        match effect {
            Effect::Stepped { idx } => {
                // The peeked entry was consumed; the warp rescheduled.
                wq.pop();
                wq.push(st.inflight[idx].exec.ready_at(), idx as u32);
            }
            Effect::Retired { idx } => {
                wq.pop();
                if st.inflight.is_empty() {
                    wq.clear();
                } else if idx < st.inflight.len() {
                    // swap_remove moved the former last warp into `idx`.
                    wq.push(st.inflight[idx].exec.ready_at(), idx as u32);
                }
            }
            Effect::Admitted => {
                let idx = st.inflight.len() - 1;
                wq.push(st.inflight[idx].exec.ready_at(), idx as u32);
            }
            Effect::Other => {}
        }
        cached[i] = next_time_indexed(st, ctx.max_warps, wq);
        if let Some(t) = cached[i] {
            ru_queue.push(t, i as u32);
        }
    }
}

/// Runs the raster phase from cycle 0 until every tile in `plan` has been rendered
/// and flushed. The event loop driver is selected per [`event_loop::mode`]; both
/// drivers produce bit-identical results.
pub fn run_raster_phase(
    cfg: &GpuConfig,
    rus: &mut [RasterUnit],
    hier: &mut MemoryHierarchy,
    plan: &mut FramePlan,
    prims: &[ScreenTriangle],
    bins: &TileBins,
) -> RasterPhaseResult {
    let ru_count = rus.len();
    let states: Vec<RuState> = rus
        .iter()
        .map(|ru| RuState {
            tiles: VecDeque::new(),
            fe_ready: None,
            fe_time: 0,
            pending: VecDeque::new(),
            inflight: Vec::new(),
            core_load: vec![0; ru.num_cores()],
            slot_gate: 0,
            cur_tile: None,
            frag_gate: 0,
            last_flush_done: 0,
            frag_start: 0,
            tile_last: 0,
            no_more_groups: false,
        })
        .collect();
    let mut ctx = PhaseCtx {
        cfg,
        max_warps: cfg.max_warps_per_core,
        rus,
        hier,
        plan,
        prims,
        bins,
        states,
        out: RasterPhaseResult {
            heatmap: TileHeatmap::new(cfg.screen.num_tiles()),
            ru_finish: vec![0; ru_count],
            ..RasterPhaseResult::default()
        },
        unique: U64Set::default(),
        frame_end: 0,
        prim_scratch: Vec::new(),
    };

    match event_loop::mode() {
        EventLoopMode::Heap => drive_heap(&mut ctx),
        EventLoopMode::Scan => drive_scan(&mut ctx),
    }

    let mut out = ctx.out;
    out.unique_lines = ctx.unique.len() as u64;
    out.raster_cycles = ctx.frame_end;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra::scheduler::SchedulerKind;
    use tbr_common::config::ScreenConfig;
    use tbr_geom::pipeline::process_scene;
    use tbr_tiling::binner::bin_triangles;
    use tbr_workloads::{suite, SceneGenerator};

    fn run(cfg: &GpuConfig, kind: SchedulerKind) -> RasterPhaseResult {
        let p = suite().remove(0);
        let scene = SceneGenerator::new(&p, &cfg.screen).scene(0);
        let (tris, _) = process_scene(&scene, &cfg.screen);
        let bins = bin_triangles(&tris, &cfg.screen);
        let mut hier = MemoryHierarchy::new(cfg.l2_cache, cfg.dram, cfg.dram_interval_cycles);
        hier.ideal = cfg.ideal_memory;
        let mut rus: Vec<RasterUnit> =
            (0..cfg.num_raster_units).map(|_| RasterUnit::new(cfg)).collect();
        let mut sched = kind.build();
        let mut plan = sched.plan_frame(&cfg.screen, None);
        run_raster_phase(cfg, &mut rus, &mut hier, &mut plan, &tris, &bins)
    }

    #[test]
    fn scan_and_heap_drivers_agree_bit_for_bit() {
        // The crate-level face of the differential oracle: the full phase
        // result (timing, heatmap, every counter) must be identical under
        // both drivers. `tests/event_loop_diff.rs` widens this to whole
        // simulated sequences.
        let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
        for kind in [SchedulerKind::Libra, SchedulerKind::Scanline] {
            event_loop::set_mode(Some(EventLoopMode::Scan));
            let scan = run(&cfg, kind);
            event_loop::set_mode(Some(EventLoopMode::Heap));
            let heap = run(&cfg, kind);
            event_loop::set_mode(None);
            assert_eq!(scan, heap, "drivers diverged under {kind:?}");
            assert!(scan.events > 0);
        }
    }

    #[test]
    fn all_tiles_rendered_and_flushed() {
        let cfg = GpuConfig::baseline(ScreenConfig::tiny());
        let r = run(&cfg, SchedulerKind::SingleZOrder);
        assert!(r.raster_cycles > 0);
        assert!(r.fragments > 0);
        assert!(r.warps > 0);
        // Every tile flushes 64 FB lines, so every tile has DRAM attribution.
        for (i, t) in r.heatmap.tiles.iter().enumerate() {
            assert!(t.dram_accesses >= 32, "tile {i} missing flush writes: {t:?}");
        }
    }

    #[test]
    fn two_rus_are_faster_than_one_with_same_total_cores() {
        let screen = ScreenConfig::tiny();
        let single = run(&GpuConfig::baseline(screen), SchedulerKind::SingleZOrder);
        let dual = run(&GpuConfig::libra(screen, 2), SchedulerKind::InterleavedZOrder);
        // Same functional work:
        assert_eq!(single.fragments, dual.fragments);
        // PTR parallelises the per-tile pipeline; on this heavily memory-bound
        // micro-scene the extra concurrency can congest DRAM (the paper's own
        // observation, Â§III-A), so allow a modest regression but no collapse.
        assert!(
            (dual.raster_cycles as f64) < (single.raster_cycles as f64) * 1.15,
            "PTR {} vs single {}",
            dual.raster_cycles,
            single.raster_cycles
        );
    }

    #[test]
    fn ideal_memory_is_faster_and_dram_free() {
        let screen = ScreenConfig::tiny();
        let real = run(&GpuConfig::baseline(screen), SchedulerKind::SingleZOrder);
        let ideal =
            run(&GpuConfig::baseline(screen).with_ideal_memory(), SchedulerKind::SingleZOrder);
        assert!(ideal.raster_cycles < real.raster_cycles);
        assert_eq!(ideal.fill_lines, 0);
    }

    #[test]
    fn deterministic() {
        let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
        let a = run(&cfg, SchedulerKind::Libra);
        let b = run(&cfg, SchedulerKind::Libra);
        assert_eq!(a, b);
    }

    #[test]
    fn instructions_attributed_to_tiles_sum_to_total() {
        let cfg = GpuConfig::baseline(ScreenConfig::tiny());
        let r = run(&cfg, SchedulerKind::SingleZOrder);
        let per_tile: u64 = r.heatmap.tiles.iter().map(|t| t.instructions).sum();
        assert_eq!(per_tile, r.instructions);
        let warp_sum: u64 = r.heatmap.tiles.iter().map(|t| t.warps).sum();
        assert_eq!(warp_sum, r.warps);
    }

    #[test]
    fn more_warp_slots_never_hurt() {
        let screen = ScreenConfig::tiny();
        let narrow = {
            let mut c = GpuConfig::baseline(screen);
            c.max_warps_per_core = 2;
            run(&c, SchedulerKind::SingleZOrder)
        };
        let wide = run(&GpuConfig::baseline(screen), SchedulerKind::SingleZOrder);
        assert!(wide.raster_cycles <= narrow.raster_cycles);
    }

    #[test]
    fn tile_pipeline_overlaps_fe_with_fragments() {
        // The sum of per-tile FE and fragment occupancies exceeds the wall-clock
        // raster time whenever the two stages overlap — which they must on a
        // fragment-heavy scene.
        let cfg = GpuConfig::baseline(ScreenConfig::tiny());
        let r = run(&cfg, SchedulerKind::SingleZOrder);
        assert!(
            r.fe_cycles + r.drain_cycles + r.flush_cycles > r.raster_cycles,
            "no overlap: fe={} drain={} flush={} wall={}",
            r.fe_cycles,
            r.drain_cycles,
            r.flush_cycles,
            r.raster_cycles
        );
    }
}
