//! Deterministic fault injection for the campaign driver.
//!
//! The fault-tolerance machinery in [`crate::campaign`] — per-job panic
//! isolation, the watchdog cycle budget, retries, checkpoint/resume — is only
//! trustworthy if it can be *exercised on demand*. This module supplies the
//! trigger: a [`FaultSpec`] names one campaign job and a fault to inject into
//! it, either on every attempt (proves the retry-then-fail path) or on the
//! first attempt only (proves that a retry salvages a transient fault).
//!
//! A spec comes from either of two equivalent sources:
//!
//! * the `LIBRA_FAULT` environment variable (read by [`FaultSpec::from_env`]
//!   at the start of every campaign run), or
//! * the `libra-sim campaign --fault <SPEC>` CLI flag.
//!
//! The spec grammar is `<kind>:<job>` where `<kind>` is one of:
//!
//! | kind           | effect                                                        |
//! |----------------|---------------------------------------------------------------|
//! | `panic`        | the job panics on **every** attempt (→ `Failed` after retries) |
//! | `panic-once`   | the job panics on the **first** attempt only (→ retry succeeds)|
//! | `timeout`      | the job's watchdog budget is forced to 0 on every attempt      |
//! | `timeout-once` | budget forced to 0 on the first attempt only                   |
//!
//! Injection is a pure function of `(job index, attempt number)`, so faulted
//! campaigns remain bit-identical across thread counts — the same determinism
//! contract as everything else in the driver.

/// What to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the job body (exercises `catch_unwind` isolation).
    Panic,
    /// Force the watchdog cycle budget to 0 (exercises the timeout path).
    Timeout,
}

/// An injected fault: a kind, a target job, and whether it fires on every
/// attempt or only the first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Which fault to inject.
    pub kind: FaultKind,
    /// Campaign-order index of the job to poison.
    pub job: usize,
    /// `true`: fire on the first attempt only, so a retry recovers.
    /// `false`: fire on every attempt, so retries exhaust into a failure.
    pub once: bool,
}

impl FaultSpec {
    /// Parses `panic:<job>`, `panic-once:<job>`, `timeout:<job>` or
    /// `timeout-once:<job>`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (kind, job) = spec
            .split_once(':')
            .ok_or_else(|| format!("fault spec `{spec}` is not of the form <kind>:<job>"))?;
        let job: usize = job
            .parse()
            .map_err(|_| format!("fault spec `{spec}`: `{job}` is not a job index"))?;
        let (kind, once) = match kind {
            "panic" => (FaultKind::Panic, false),
            "panic-once" => (FaultKind::Panic, true),
            "timeout" => (FaultKind::Timeout, false),
            "timeout-once" => (FaultKind::Timeout, true),
            other => {
                return Err(format!(
                    "fault spec `{spec}`: unknown kind `{other}` \
                     (panic|panic-once|timeout|timeout-once)"
                ))
            }
        };
        Ok(Self { kind, job, once })
    }

    /// Reads `LIBRA_FAULT`, if set.
    ///
    /// # Panics
    /// Panics on a malformed value — a silently ignored fault spec would make a
    /// fault-injection test vacuously pass.
    pub fn from_env() -> Option<Self> {
        std::env::var("LIBRA_FAULT")
            .ok()
            .filter(|v| !v.is_empty())
            .map(|v| Self::parse(&v).expect("invalid LIBRA_FAULT"))
    }

    /// Whether this spec fires for `(job, attempt)`.
    pub fn fires(&self, job: usize, attempt: u32) -> bool {
        self.job == job && (!self.once || attempt == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_kinds() {
        assert_eq!(
            FaultSpec::parse("panic:3").unwrap(),
            FaultSpec { kind: FaultKind::Panic, job: 3, once: false }
        );
        assert_eq!(
            FaultSpec::parse("panic-once:0").unwrap(),
            FaultSpec { kind: FaultKind::Panic, job: 0, once: true }
        );
        assert_eq!(
            FaultSpec::parse("timeout:12").unwrap(),
            FaultSpec { kind: FaultKind::Timeout, job: 12, once: false }
        );
        assert_eq!(
            FaultSpec::parse("timeout-once:7").unwrap(),
            FaultSpec { kind: FaultKind::Timeout, job: 7, once: true }
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in ["", "panic", "panic:", "panic:x", "explode:3", "panic:3:4"] {
            assert!(FaultSpec::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn once_fires_only_on_attempt_zero() {
        let every = FaultSpec::parse("panic:2").unwrap();
        assert!(every.fires(2, 0) && every.fires(2, 1));
        assert!(!every.fires(1, 0));
        let once = FaultSpec::parse("timeout-once:2").unwrap();
        assert!(once.fires(2, 0));
        assert!(!once.fires(2, 1));
    }
}
