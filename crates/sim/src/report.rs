//! Human-readable reports over frame/sequence statistics.
//!
//! The experiment harness prints its own tables; this module provides the reusable
//! pieces examples and downstream users want: a one-line frame summary, a sequence
//! summary, and a side-by-side comparison of two sequences (the baseline-vs-LIBRA
//! view of the paper's result tables).

use tbr_common::config::GpuConfig;
use tbr_common::metrics::MetricsRegistry;
use tbr_common::stats::{FrameStats, SequenceStats};

use crate::campaign::CampaignResult;

/// Serialises the per-frame stats of every *successful* campaign job into one
/// `libra-metrics-v1` document (labels: `job`, `bench`, `scheduler`, `frame`).
/// Failed jobs contribute nothing, so a resumed run's report is byte-identical
/// to an uninterrupted one once every job has succeeded — and because results
/// are keyed by campaign position, a sharded service run emits the same bytes
/// as a single-process sweep. This is the determinism anchor the CLI, the
/// campaign service, and CI's `cmp` gates all share.
pub fn campaign_metrics_json(results: &[CampaignResult]) -> String {
    let mut reg = MetricsRegistry::new();
    for r in results {
        if let Some(s) = r.success() {
            let job = s.job.to_string();
            for (f, fs) in s.stats.frames.iter().enumerate() {
                let frame = f.to_string();
                fs.publish(
                    &mut reg,
                    &[
                        ("job", job.as_str()),
                        ("bench", s.abbrev),
                        ("scheduler", s.scheduler),
                        ("frame", frame.as_str()),
                    ],
                );
            }
        }
    }
    reg.to_json()
}

/// One-line summary of a frame.
pub fn frame_line(f: &FrameStats) -> String {
    format!(
        "{}: {} cycles (geom {} + raster {}), {} prims, {} frags, {} warps, \
         tex hit {:.1}%, tile hit {:.1}%, L2 hit {:.1}%, tex lat {:.1}, DRAM {} (lat {:.1})",
        f.frame,
        f.total_cycles(),
        f.geometry_cycles,
        f.raster_cycles,
        f.primitives,
        f.fragments,
        f.warps,
        f.texture_cache.hit_ratio() * 100.0,
        f.tile_cache.hit_ratio() * 100.0,
        f.l2_cache.hit_ratio() * 100.0,
        f.avg_texture_latency(),
        f.dram.total_accesses(),
        f.dram.avg_latency(),
    )
}

/// Multi-line summary of a sequence.
pub fn sequence_summary(label: &str, s: &SequenceStats, cfg: &GpuConfig) -> String {
    let mut out = format!(
        "{label}: {} frames, {:.0} cycles/frame ({:.1} FPS @ {} MHz)\n",
        s.frames.len(),
        s.avg_frame_cycles(),
        cfg.fps(s.avg_frame_cycles()),
        cfg.freq_mhz
    );
    out.push_str(&format!(
        "  texture: hit {:.1}%, latency {:.1} cycles, replication {:.2}x\n",
        s.texture_hit_ratio() * 100.0,
        s.avg_texture_latency(),
        s.avg_texture_replication()
    ));
    out.push_str(&format!(
        "  caches: tile hit {:.1}%, L2 hit {:.1}%\n",
        s.tile_hit_ratio() * 100.0,
        s.l2_hit_ratio() * 100.0
    ));
    out.push_str(&format!(
        "  DRAM: {:.0} accesses/frame\n",
        s.total_dram_accesses() as f64 / s.frames.len().max(1) as f64
    ));
    out
}

/// Side-by-side comparison: speedup and the paper's headline metrics of `candidate`
/// relative to `baseline`.
pub fn compare(
    baseline_label: &str,
    baseline: &SequenceStats,
    candidate_label: &str,
    candidate: &SequenceStats,
) -> String {
    let speedup = candidate.speedup_over(baseline);
    let lat = if baseline.avg_texture_latency() > 0.0 {
        (1.0 - candidate.avg_texture_latency() / baseline.avg_texture_latency()) * 100.0
    } else {
        0.0
    };
    let hit = (candidate.texture_hit_ratio() - baseline.texture_hit_ratio()) * 100.0;
    format!(
        "{candidate_label} vs {baseline_label}: speedup {:.3}x ({:+.1}%), \
         texture latency {:+.1}%, texture hit ratio {:+.1} pp, DRAM accesses {:.3}x",
        speedup,
        (speedup - 1.0) * 100.0,
        -lat,
        hit,
        candidate.total_dram_accesses() as f64 / baseline.total_dram_accesses().max(1) as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbr_common::config::ScreenConfig;
    use tbr_common::stats::CacheStats;

    fn seq(cycles: u64, hit: u64) -> SequenceStats {
        SequenceStats {
            frames: vec![FrameStats {
                raster_cycles: cycles,
                geometry_cycles: cycles / 10,
                texture_cache: CacheStats { accesses: 100, hits: hit, misses: 100 - hit, evictions: 0 },
                texture_requests: 10,
                texture_latency_sum: 400,
                ..FrameStats::default()
            }],
        }
    }

    #[test]
    fn frame_line_mentions_key_metrics() {
        let f = FrameStats {
            raster_cycles: 1234,
            tile_cache: CacheStats { accesses: 10, hits: 5, misses: 5, evictions: 0 },
            l2_cache: CacheStats { accesses: 4, hits: 3, misses: 1, evictions: 0 },
            ..FrameStats::default()
        };
        let line = frame_line(&f);
        assert!(line.contains("1234"));
        assert!(line.contains("DRAM"));
        assert!(line.contains("tile hit 50.0%"), "{line}");
        assert!(line.contains("L2 hit 75.0%"), "{line}");
    }

    #[test]
    fn sequence_summary_contains_fps() {
        let cfg = GpuConfig::baseline(ScreenConfig::tiny());
        let text = sequence_summary("base", &seq(800_000, 70), &cfg);
        assert!(text.contains("base"));
        assert!(text.contains("FPS"));
        assert!(text.contains("texture"));
        assert!(text.contains("tile hit"), "{text}");
        assert!(text.contains("L2 hit"), "{text}");
    }

    #[test]
    fn compare_reports_speedup_direction() {
        let slow = seq(1000, 60);
        let fast = seq(500, 80);
        let text = compare("slow", &slow, "fast", &fast);
        assert!(text.contains("2.0"), "{text}");
        assert!(text.contains("+20.0 pp"), "{text}");
    }
}
