//! Deterministic, fault-tolerant parallel simulation-campaign driver.
//!
//! Every figure of the paper is a sweep: workload × scheduler × GPU configuration,
//! each point one independent [`simulate_sequence`](crate::simulate_sequence) run.
//! The cycle-level simulator itself is strictly single-threaded, but the points
//! share nothing, so campaign throughput scales with cores — the classic
//! "parallelize across simulation instances, not within one" result from the
//! architecture-simulation literature.
//!
//! # Determinism scheme
//!
//! Parallel execution is **bit-identical** to serial execution, regardless of
//! thread count or scheduling jitter:
//!
//! 1. *Per-job seeds are position-derived.* Job `i` simulates its profile with an
//!    effective seed `profile.seed ^ splitmix64_mix(campaign_seed ^ i·φ64)` — a pure
//!    function of `(campaign_seed, i)`, never of which worker ran it or when.
//!    Campaign seed 0 means "no perturbation": the canonical paper suite.
//! 2. *Jobs share no mutable state.* Each worker builds its own GPU, caches, DRAM
//!    and scheduler from the job spec; the simulator is deterministic
//!    (same inputs → same cycle counts).
//! 3. *Ordered result collection.* Workers write into the result slot indexed by
//!    the job's position, so the returned `Vec` is in campaign order — the same
//!    order `run_serial` produces — no matter which thread finished first.
//!
//! Work distribution uses a work-stealing queue: jobs are dealt round-robin into
//! per-worker deques; a worker pops from the front of its own deque and, when
//! empty, steals from the back of a victim's. Stealing only changes *who* runs a
//! job, never *what* the job computes, so the guarantee above is unaffected.
//!
//! # Fault tolerance
//!
//! A long sweep must not lose 31 finished jobs to one bad one. Three layers
//! (configured through [`RunOptions`], driven by [`Campaign::run_resilient`])
//! keep a campaign alive and its partial results recoverable:
//!
//! * **Panic isolation.** Each job attempt runs under `catch_unwind` behind a
//!   quiet panic hook, so a panicking job becomes a structured
//!   [`CampaignResult::Failed`] — carrying the panic message — instead of
//!   aborting the sweep. Survivors are unaffected: the failed attempt's
//!   simulator state and partial trace are discarded wholesale.
//! * **Watchdog budget.** With [`RunOptions::budget_cycles`] set, a job is run
//!   frame-by-frame and aborted deterministically once its accumulated
//!   simulated cycles exceed the budget, yielding
//!   [`CampaignResult::TimedOut`]. Simulated cycles — not wall-clock — keep the
//!   verdict bit-identical across hosts and thread counts.
//! * **Checkpointing.** With a checkpoint file attached, every completed job is
//!   appended atomically (see [`crate::checkpoint`]); `--resume` adopts the
//!   recorded successes, re-runs failures, and — because seeds are
//!   position-derived — finishes with results bit-identical to an
//!   uninterrupted run.
//!
//! Failures can be injected on demand ([`crate::fault`], `LIBRA_FAULT`) to
//! exercise every one of these paths in tests and CI.
//!
//! ```
//! use tbr_common::config::{GpuConfig, ScreenConfig};
//! use tbr_sim::campaign::Campaign;
//! use tbr_sim::SchedulerKind;
//! use tbr_workloads::suite;
//!
//! let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
//! let mut c = Campaign::new(0);
//! for p in suite().into_iter().take(2) {
//!     c.push(&cfg, SchedulerKind::Libra, p, 1);
//! }
//! let parallel = c.run(2);
//! let serial = c.run_serial();
//! assert_eq!(parallel, serial); // bit-identical, in campaign order
//! ```

use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Mutex, Once};
use std::time::Instant;

use libra::scheduler::SchedulerKind;
use tbr_common::config::GpuConfig;
use tbr_common::mechanism::MechanismSpec;
use tbr_common::rng::splitmix64_mix;
use tbr_common::stats::SequenceStats;
use tbr_common::hostprof::{self, HostMeta, HostTotals};
use tbr_common::trace::{self, Trace};
use tbr_workloads::{BenchmarkProfile, SceneGenerator};

use crate::checkpoint::{
    Checkpoint, CheckpointFormat, CheckpointHeader, CheckpointWriter, Record, RecordOutcome,
};
use crate::fault::{FaultKind, FaultSpec};
use crate::gpu::{simulate_sequence_mech, GpuSimulator};

/// The golden-gamma increment of SplitMix64 — spaces job indices far apart in the
/// mixer's input domain so adjacent jobs get decorrelated seeds.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// One independent simulation point of a campaign.
#[derive(Clone)]
pub struct CampaignJob {
    /// GPU configuration of this point.
    pub cfg: GpuConfig,
    /// Tile scheduler of this point.
    pub scheduler: SchedulerKind,
    /// Mechanism axis (Rendering Elimination / WaSP) layered on the scheduler.
    /// Defaults to none — the historical LIBRA-only behaviour.
    pub mechanism: MechanismSpec,
    /// Workload profile (its `seed` is perturbed per [`Campaign::job_seed`]).
    pub profile: BenchmarkProfile,
    /// Frames to simulate.
    pub frames: u32,
}

impl fmt::Debug for CampaignJob {
    // Hand-written so the campaign fingerprint (a fold over this Debug form)
    // stays byte-identical to pre-mechanism checkpoints and wire payloads when
    // the mechanism axis is at its default: old `libra-campaign-ckpt-v1` /
    // `libra-wire-v1` artifacts must keep resuming. A non-default mechanism
    // IS fingerprinted — sweeping it must change the campaign identity.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("CampaignJob");
        d.field("cfg", &self.cfg).field("scheduler", &self.scheduler);
        if !self.mechanism.is_default() {
            d.field("mechanism", &self.mechanism);
        }
        d.field("profile", &self.profile).field("frames", &self.frames);
        d.finish()
    }
}

/// One successfully completed point: the job's position, its effective seed, and
/// its full statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSuccess {
    /// Index of the job in the campaign (results come back in this order).
    pub job: usize,
    /// Workload abbreviation (for reports).
    pub abbrev: &'static str,
    /// Scheduler name (for reports).
    pub scheduler: &'static str,
    /// The effective workload seed the job ran with.
    pub effective_seed: u64,
    /// Full per-frame statistics of the sequence.
    pub stats: SequenceStats,
}

/// The outcome of one campaign job: success, panic, or watchdog timeout.
///
/// Failures are *structured results*, not aborts — a sweep with one poisoned job
/// still completes the other 31 and reports exactly what went wrong where.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignResult {
    /// The job completed; carries its statistics.
    Done(JobSuccess),
    /// Every attempt of the job panicked; the sweep carried on without it.
    Failed {
        /// Index of the job in the campaign.
        job: usize,
        /// Workload abbreviation.
        abbrev: &'static str,
        /// Scheduler name.
        scheduler: &'static str,
        /// Attempts made (1 + retries).
        attempts: u32,
        /// Panic payload of the last attempt.
        panic_msg: String,
    },
    /// Every attempt of the job exceeded the watchdog cycle budget.
    TimedOut {
        /// Index of the job in the campaign.
        job: usize,
        /// Workload abbreviation.
        abbrev: &'static str,
        /// Scheduler name.
        scheduler: &'static str,
        /// Attempts made (1 + retries).
        attempts: u32,
        /// The budget in effect, in simulated cycles.
        budget_cycles: u64,
        /// Simulated cycles accumulated when the watchdog fired (last attempt).
        spent_cycles: u64,
    },
}

impl CampaignResult {
    /// Index of the job in the campaign.
    pub fn job(&self) -> usize {
        match self {
            Self::Done(s) => s.job,
            Self::Failed { job, .. } | Self::TimedOut { job, .. } => *job,
        }
    }

    /// Workload abbreviation.
    pub fn abbrev(&self) -> &'static str {
        match self {
            Self::Done(s) => s.abbrev,
            Self::Failed { abbrev, .. } | Self::TimedOut { abbrev, .. } => abbrev,
        }
    }

    /// Scheduler name.
    pub fn scheduler(&self) -> &'static str {
        match self {
            Self::Done(s) => s.scheduler,
            Self::Failed { scheduler, .. } | Self::TimedOut { scheduler, .. } => scheduler,
        }
    }

    /// The success payload, if the job completed.
    pub fn success(&self) -> Option<&JobSuccess> {
        match self {
            Self::Done(s) => Some(s),
            _ => None,
        }
    }

    /// The job's statistics, if it completed.
    pub fn stats(&self) -> Option<&SequenceStats> {
        self.success().map(|s| &s.stats)
    }

    /// Whether the job completed.
    pub fn is_success(&self) -> bool {
        matches!(self, Self::Done(_))
    }

    /// A one-line human-readable failure description, or `None` for successes.
    pub fn failure_line(&self) -> Option<String> {
        match self {
            Self::Done(_) => None,
            Self::Failed { job, abbrev, scheduler, attempts, panic_msg } => Some(format!(
                "job {job} ({abbrev}/{scheduler}) FAILED after {attempts} attempt(s): {panic_msg}"
            )),
            Self::TimedOut { job, abbrev, scheduler, attempts, budget_cycles, spent_cycles } => {
                Some(format!(
                    "job {job} ({abbrev}/{scheduler}) TIMED OUT after {attempts} attempt(s): \
                     {spent_cycles} cycles > budget {budget_cycles}"
                ))
            }
        }
    }
}

/// Host-side wall-clock profile of one worker thread of a campaign run.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerProfile {
    /// Worker index (0-based).
    pub worker: usize,
    /// Jobs this worker completed.
    pub jobs_run: usize,
    /// Jobs obtained by stealing from another worker's deque.
    pub steals: u64,
    /// Wall-clock seconds spent inside jobs (excludes queue waits).
    pub busy_secs: f64,
}

/// Host-side wall-clock profile of one campaign job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobProfile {
    /// Job index in campaign order.
    pub job: usize,
    /// Workload abbreviation.
    pub abbrev: &'static str,
    /// Scheduler name.
    pub scheduler: &'static str,
    /// Worker that ran the job (0 for jobs adopted from a checkpoint).
    pub worker: usize,
    /// Wall-clock seconds the job took (0 for jobs adopted from a checkpoint).
    pub secs: f64,
}

/// Host-side profile of a whole campaign run: wall-clock, per-worker utilization
/// and steal counts, per-job timings. Written to `bench_results/` by
/// `libra-sim campaign --profile`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignProfile {
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall-clock seconds.
    pub wall_secs: f64,
    /// One entry per worker.
    pub workers: Vec<WorkerProfile>,
    /// One entry per job, in campaign order.
    pub jobs: Vec<JobProfile>,
    /// Aggregated parallel-event-core host telemetry, merged over every job
    /// that ran with [`RunOptions::hostprof`] set (`None` otherwise). Only the
    /// `par` event-loop driver records phases, so under the serial drivers
    /// this is `Some` with zero phases.
    pub host: Option<HostTotals>,
}

impl CampaignProfile {
    /// Mean worker utilization in `[0, 1]`: busy time over `threads × wall`.
    pub fn utilization(&self) -> f64 {
        let busy: f64 = self.workers.iter().map(|w| w.busy_secs).sum();
        let denom = self.threads as f64 * self.wall_secs;
        if denom <= 0.0 {
            0.0
        } else {
            (busy / denom).min(1.0)
        }
    }

    /// Per-worker CSV (`worker,jobs_run,steals,busy_secs,utilization`).
    pub fn workers_csv(&self) -> String {
        let mut out = String::from("worker,jobs_run,steals,busy_secs,utilization\n");
        for w in &self.workers {
            let util = if self.wall_secs > 0.0 { w.busy_secs / self.wall_secs } else { 0.0 };
            out.push_str(&format!(
                "{},{},{},{:.6},{:.4}\n",
                w.worker, w.jobs_run, w.steals, w.busy_secs, util
            ));
        }
        out
    }

    /// Per-job CSV (`job,abbrev,scheduler,worker,secs`).
    pub fn jobs_csv(&self) -> String {
        let mut out = String::from("job,abbrev,scheduler,worker,secs\n");
        for j in &self.jobs {
            out.push_str(&format!(
                "{},{},{},{},{:.6}\n",
                j.job, j.abbrev, j.scheduler, j.worker, j.secs
            ));
        }
        out
    }
}

/// Knobs of a resilient campaign run ([`Campaign::run_resilient`]).
///
/// The default is the behaviour of the plain drivers: one thread, no tracing,
/// no budget, retry a failing job once, no fault injection, no checkpoint.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker threads (clamped to `1..=pending jobs`).
    pub threads: usize,
    /// Collect one cycle-level trace per successful job.
    pub traced: bool,
    /// Watchdog: abort a job once its simulated cycles exceed this budget.
    pub budget_cycles: Option<u64>,
    /// Re-run a failed/timed-out job this many extra times before giving up.
    /// The default 1 means "retry once, then fail".
    pub retries: u32,
    /// Deterministic fault injection (tests/CI); see [`crate::fault`].
    pub fault: Option<FaultSpec>,
    /// Write (truncating) a fresh checkpoint here as jobs complete.
    pub checkpoint_to: Option<String>,
    /// Encoding of a freshly created checkpoint (`checkpoint_to`). Binary by
    /// default; resume appends always follow the existing file's encoding.
    pub ckpt_format: CheckpointFormat,
    /// Adopt completed jobs from this checkpoint before running the rest.
    /// If `checkpoint_to` is unset, new records are appended to this same file.
    pub resume_from: Option<String>,
    /// Collect host-time parallel-core telemetry ([`tbr_common::hostprof`])
    /// per job and aggregate it into [`CampaignProfile::host`].
    pub hostprof: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            threads: 1,
            traced: false,
            budget_cycles: None,
            retries: 1,
            fault: None,
            checkpoint_to: None,
            ckpt_format: CheckpointFormat::default(),
            resume_from: None,
            hostprof: false,
        }
    }
}

/// Everything a resilient campaign run produced.
#[derive(Debug)]
pub struct CampaignRun {
    /// One result per job, in campaign order (successes and failures).
    pub results: Vec<CampaignResult>,
    /// Host-side wall-clock profile.
    pub profile: CampaignProfile,
    /// One labelled trace per *successful, freshly simulated* job, in campaign
    /// order (adopted and failed jobs produce no trace).
    pub traces: Vec<(String, Trace)>,
    /// Jobs adopted as already-done from the resume checkpoint.
    pub resumed_jobs: usize,
    /// First checkpoint-append error, if any. Results are complete regardless —
    /// a broken disk degrades the checkpoint, never the sweep.
    pub checkpoint_error: Option<String>,
}

/// Success/failure counts of a campaign run, for the end-of-run report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignSummary {
    /// Total jobs in the campaign.
    pub total: usize,
    /// Jobs that completed (including adopted ones).
    pub done: usize,
    /// Jobs that exhausted retries panicking.
    pub failed: usize,
    /// Jobs that exhausted retries over budget.
    pub timed_out: usize,
    /// Jobs adopted from the resume checkpoint.
    pub resumed: usize,
}

impl CampaignSummary {
    /// Renders the one-line summary, e.g.
    /// `31/32 jobs succeeded (1 failed; 12 adopted from checkpoint)`.
    pub fn render(&self) -> String {
        let mut s = format!("{}/{} jobs succeeded", self.done, self.total);
        let mut notes = Vec::new();
        if self.failed > 0 {
            notes.push(format!("{} failed", self.failed));
        }
        if self.timed_out > 0 {
            notes.push(format!("{} timed out", self.timed_out));
        }
        if self.resumed > 0 {
            notes.push(format!("{} adopted from checkpoint", self.resumed));
        }
        if !notes.is_empty() {
            s.push_str(&format!(" ({})", notes.join("; ")));
        }
        s
    }
}

impl CampaignRun {
    /// Counts outcomes for the end-of-run report.
    pub fn summary(&self) -> CampaignSummary {
        let mut s = CampaignSummary {
            total: self.results.len(),
            done: 0,
            failed: 0,
            timed_out: 0,
            resumed: self.resumed_jobs,
        };
        for r in &self.results {
            match r {
                CampaignResult::Done(_) => s.done += 1,
                CampaignResult::Failed { .. } => s.failed += 1,
                CampaignResult::TimedOut { .. } => s.timed_out += 1,
            }
        }
        s
    }

    /// The failed/timed-out results, in campaign order.
    pub fn failures(&self) -> impl Iterator<Item = &CampaignResult> {
        self.results.iter().filter(|r| !r.is_success())
    }
}

/// Runs `f` under `catch_unwind` with panic output suppressed *for this thread
/// only*; a panic comes back as `Err(message)`.
///
/// The process-wide hook is installed once and delegates to the previous hook
/// unless the current thread opted in, so panics elsewhere (other tests, real
/// bugs outside job isolation) keep their normal backtrace output.
fn quiet_catch_unwind<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    static HOOK: Once = Once::new();
    thread_local! {
        static SUPPRESS: Cell<bool> = const { Cell::new(false) };
    }
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !SUPPRESS.with(|s| s.get()) {
                prev(info);
            }
        }));
    });
    SUPPRESS.with(|s| s.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    SUPPRESS.with(|s| s.set(false));
    result.map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

/// Outcome of a single isolated attempt at one job.
enum Attempt {
    Done(SequenceStats),
    TimedOut { spent: u64 },
}

/// A batch of independent simulation jobs with a campaign-level seed.
#[derive(Debug, Clone, Default)]
pub struct Campaign {
    /// Campaign seed. 0 leaves every profile's canonical seed untouched; any other
    /// value resamples each job's scene layout deterministically.
    pub seed: u64,
    jobs: Vec<CampaignJob>,
}

impl Campaign {
    /// Creates an empty campaign.
    pub fn new(seed: u64) -> Self {
        Self { seed, jobs: Vec::new() }
    }

    /// Appends one simulation point (mechanism axis at its default: none).
    pub fn push(
        &mut self,
        cfg: &GpuConfig,
        scheduler: SchedulerKind,
        profile: BenchmarkProfile,
        frames: u32,
    ) {
        self.push_mech(cfg, scheduler, MechanismSpec::default(), profile, frames);
    }

    /// Appends one simulation point with an explicit mechanism axis.
    pub fn push_mech(
        &mut self,
        cfg: &GpuConfig,
        scheduler: SchedulerKind,
        mechanism: MechanismSpec,
        profile: BenchmarkProfile,
        frames: u32,
    ) {
        self.jobs.push(CampaignJob {
            cfg: cfg.clone(),
            scheduler,
            mechanism,
            profile,
            frames,
        });
    }

    /// Builds the full cross product `profiles × schedulers` on one configuration —
    /// the shape of most figure sweeps. The mechanism axis stays at its default.
    pub fn grid(
        seed: u64,
        cfg: &GpuConfig,
        schedulers: &[SchedulerKind],
        profiles: &[BenchmarkProfile],
        frames: u32,
    ) -> Self {
        Self::grid_mech(seed, cfg, schedulers, MechanismSpec::default(), profiles, frames)
    }

    /// [`Campaign::grid`] with every job running the given mechanism axis on
    /// top of its scheduler — the shape of the RE/WaSP head-to-head sweeps.
    pub fn grid_mech(
        seed: u64,
        cfg: &GpuConfig,
        schedulers: &[SchedulerKind],
        mechanism: MechanismSpec,
        profiles: &[BenchmarkProfile],
        frames: u32,
    ) -> Self {
        let mut c = Self::new(seed);
        for p in profiles {
            for &s in schedulers {
                c.push_mech(cfg, s, mechanism, p.clone(), frames);
            }
        }
        c
    }

    /// The jobs in campaign order.
    pub fn jobs(&self) -> &[CampaignJob] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the campaign is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The seed perturbation of job `index`: a pure function of
    /// `(campaign seed, index)`, independent of worker assignment. Campaign seed 0
    /// disables perturbation so the canonical suite (the paper's fixed layouts)
    /// simulates as-is.
    pub fn job_seed(&self, index: usize) -> u64 {
        if self.seed == 0 {
            0
        } else {
            splitmix64_mix(self.seed ^ (index as u64).wrapping_mul(GOLDEN_GAMMA))
        }
    }

    /// The effective workload seed job `index` runs with.
    pub fn effective_seed(&self, index: usize) -> u64 {
        self.jobs[index].profile.seed ^ self.job_seed(index)
    }

    /// A position-insensitive digest of `(campaign seed, full job list)`:
    /// configurations, schedulers, non-default mechanisms, workload profiles
    /// and frame counts all feed in. A checkpoint records it so `--resume`
    /// refuses to graft one campaign's results onto a different sweep.
    /// Default-mechanism jobs digest exactly as they did before the mechanism
    /// axis existed (see [`CampaignJob`]'s `Debug`), so pre-mechanism
    /// checkpoints and wire payloads keep validating.
    pub fn fingerprint(&self) -> u64 {
        let mut h = splitmix64_mix(self.seed ^ 0xC0FF_EE00_D15E_A5E5);
        for job in &self.jobs {
            for b in format!("{job:?}").bytes() {
                h = splitmix64_mix(h ^ u64::from(b));
            }
        }
        h
    }

    fn trace_label(r: &CampaignResult) -> String {
        format!("job{} {} {}", r.job(), r.abbrev(), r.scheduler())
    }

    /// One isolated attempt at job `index`: panic injection, then either the
    /// plain full-sequence path (no budget — the exact code path of
    /// [`simulate_sequence_mech`]) or the frame-granular watchdog loop. Both paths
    /// render frames through the same `render_frame`, so a generous budget
    /// yields bit-identical stats to no budget at all.
    fn run_attempt(
        &self,
        index: usize,
        profile: &BenchmarkProfile,
        budget: Option<u64>,
        inject_panic: bool,
    ) -> Attempt {
        let job = &self.jobs[index];
        if inject_panic {
            panic!(
                "injected fault: panic in campaign job {index} ({}/{})",
                job.profile.abbrev,
                job.scheduler.build().name()
            );
        }
        match budget {
            None => Attempt::Done(simulate_sequence_mech(
                &job.cfg,
                job.scheduler,
                job.mechanism,
                profile,
                job.frames,
            )),
            Some(b) => {
                let mut sim =
                    GpuSimulator::with_mechanism(job.cfg.clone(), job.scheduler, job.mechanism);
                let gen = SceneGenerator::new(profile, &job.cfg.screen);
                let mut seq = SequenceStats::default();
                for f in 0..job.frames {
                    let scene = gen.scene(f);
                    seq.frames.push(sim.render_frame(&scene));
                    let spent = seq.total_cycles();
                    if spent > b {
                        return Attempt::TimedOut { spent };
                    }
                }
                Attempt::Done(seq)
            }
        }
    }

    /// Runs job `index` with isolation, watchdog, fault injection and retries.
    /// Always returns a result — a panic or timeout becomes a structured
    /// failure, never an abort. The trace and host-telemetry totals (each if
    /// requested) cover only the successful attempt; failed attempts discard
    /// their partial collections.
    fn run_job_resilient(
        &self,
        index: usize,
        opts: &RunOptions,
    ) -> (CampaignResult, Option<Trace>, Option<HostTotals>) {
        let job = &self.jobs[index];
        let abbrev = job.profile.abbrev;
        let scheduler = job.scheduler.build().name();
        let effective_seed = self.effective_seed(index);
        let mut profile = job.profile.clone();
        profile.seed = effective_seed;

        let attempts = opts.retries.saturating_add(1);
        let mut last = None;
        for attempt in 0..attempts {
            let fault = opts.fault.filter(|f| f.fires(index, attempt));
            let inject_panic = matches!(fault, Some(FaultSpec { kind: FaultKind::Panic, .. }));
            let budget = if matches!(fault, Some(FaultSpec { kind: FaultKind::Timeout, .. })) {
                Some(0)
            } else {
                opts.budget_cycles
            };
            if opts.traced {
                trace::start();
            }
            if opts.hostprof {
                hostprof::start();
            }
            let outcome =
                quiet_catch_unwind(|| self.run_attempt(index, &profile, budget, inject_panic));
            match outcome {
                Ok(Attempt::Done(stats)) => {
                    let t = if opts.traced { trace::finish() } else { None };
                    let hp = if opts.hostprof {
                        hostprof::finish().map(|p| p.totals())
                    } else {
                        None
                    };
                    let s = JobSuccess { job: index, abbrev, scheduler, effective_seed, stats };
                    return (CampaignResult::Done(s), t, hp);
                }
                Ok(Attempt::TimedOut { spent }) => {
                    if opts.traced {
                        let _ = trace::finish(); // drop the partial trace
                    }
                    if opts.hostprof {
                        let _ = hostprof::finish(); // drop the partial profile
                    }
                    last = Some(CampaignResult::TimedOut {
                        job: index,
                        abbrev,
                        scheduler,
                        attempts: attempt + 1,
                        budget_cycles: budget.unwrap_or(0),
                        spent_cycles: spent,
                    });
                }
                Err(panic_msg) => {
                    if opts.traced {
                        let _ = trace::finish(); // drop the partial trace
                    }
                    if opts.hostprof {
                        let _ = hostprof::finish(); // drop the partial profile
                    }
                    last = Some(CampaignResult::Failed {
                        job: index,
                        abbrev,
                        scheduler,
                        attempts: attempt + 1,
                        panic_msg,
                    });
                }
            }
        }
        (last.expect("at least one attempt was made"), None, None)
    }

    /// Runs the single job `index` with the full resilience envelope (panic
    /// isolation, watchdog, fault injection, retries) on the calling thread,
    /// discarding any trace/host-telemetry collection. This is the unit of
    /// work a campaign-service worker process executes per `assign` frame:
    /// because job seeds are position-derived, the result is bit-identical to
    /// the same job's slot in [`run_resilient`](Campaign::run_resilient) no
    /// matter which process runs it.
    pub fn run_one(&self, index: usize, opts: &RunOptions) -> CampaignResult {
        assert!(index < self.jobs.len(), "job index {index} out of range");
        self.run_job_resilient(index, opts).0
    }

    /// Validates one deserialised [`Record`] (from a checkpoint or a
    /// `libra-wire-v1` `result` frame) against this campaign and re-binds it
    /// into a [`CampaignResult`]. Rejects job indices out of range, mismatched
    /// workload/scheduler names, and — for successes — an effective seed other
    /// than the position-derived one this campaign would have used, so a
    /// worker cannot silently contribute results for a different sweep.
    pub fn adopt_record(&self, rec: &Record) -> Result<CampaignResult, String> {
        let Some(job) = self.jobs.get(rec.job) else {
            return Err(format!(
                "record for job {} is out of range (campaign has {} jobs)",
                rec.job,
                self.jobs.len()
            ));
        };
        let (abbrev, scheduler) = (job.profile.abbrev, job.scheduler.build().name());
        if rec.abbrev != abbrev || rec.scheduler != scheduler {
            return Err(format!(
                "record for job {} names {}/{} but the campaign job is {}/{}",
                rec.job, rec.abbrev, rec.scheduler, abbrev, scheduler
            ));
        }
        Ok(match &rec.outcome {
            RecordOutcome::Done { effective_seed, stats } => {
                let want = self.effective_seed(rec.job);
                if *effective_seed != want {
                    return Err(format!(
                        "record for job {} carries effective seed {:#x}, expected {want:#x}",
                        rec.job, effective_seed
                    ));
                }
                CampaignResult::Done(JobSuccess {
                    job: rec.job,
                    abbrev,
                    scheduler,
                    effective_seed: *effective_seed,
                    stats: stats.clone(),
                })
            }
            RecordOutcome::Failed { attempts, panic_msg } => CampaignResult::Failed {
                job: rec.job,
                abbrev,
                scheduler,
                attempts: *attempts,
                panic_msg: panic_msg.clone(),
            },
            RecordOutcome::TimedOut { attempts, budget_cycles, spent_cycles } => {
                CampaignResult::TimedOut {
                    job: rec.job,
                    abbrev,
                    scheduler,
                    attempts: *attempts,
                    budget_cycles: *budget_cycles,
                    spent_cycles: *spent_cycles,
                }
            }
        })
    }

    /// Validates a loaded checkpoint against this campaign and adopts its
    /// recorded successes into `prefilled`. Failed/timed-out records are *not*
    /// adopted — resuming re-runs them (that is the salvage path).
    fn adopt_checkpoint(
        &self,
        ckpt: &Checkpoint,
        path: &str,
        prefilled: &mut [Option<CampaignResult>],
    ) -> Result<usize, String> {
        let n = self.jobs.len();
        let h = &ckpt.header;
        if h.jobs != n {
            return Err(format!(
                "checkpoint {path} is for a campaign of {} jobs, this campaign has {n}",
                h.jobs
            ));
        }
        if h.seed != self.seed {
            return Err(format!(
                "checkpoint {path} was written with campaign seed {:#x}, this campaign uses {:#x}",
                h.seed, self.seed
            ));
        }
        if h.fingerprint != self.fingerprint() {
            return Err(format!(
                "checkpoint {path} fingerprint {:#x} does not match this campaign's {:#x} — \
                 it records a different sweep (jobs, configs, or schedulers changed)",
                h.fingerprint,
                self.fingerprint()
            ));
        }
        // Later records for the same job supersede earlier ones (a resumed run
        // appends corrections), so fold by job index in file order.
        let mut latest: Vec<Option<&crate::checkpoint::Record>> = vec![None; n];
        for rec in &ckpt.records {
            let job = &self.jobs[rec.job];
            let (want_a, want_s) = (job.profile.abbrev, job.scheduler.build().name());
            if rec.abbrev != want_a || rec.scheduler != want_s {
                return Err(format!(
                    "checkpoint {path}: record for job {} names {}/{} but the campaign job is \
                     {}/{}",
                    rec.job, rec.abbrev, rec.scheduler, want_a, want_s
                ));
            }
            latest[rec.job] = Some(rec);
        }
        let mut adopted = 0;
        for (i, rec) in latest.iter().enumerate() {
            let Some(rec) = rec else { continue };
            if let RecordOutcome::Done { effective_seed, stats } = &rec.outcome {
                let want = self.effective_seed(i);
                if *effective_seed != want {
                    return Err(format!(
                        "checkpoint {path}: job {i} recorded effective seed {:#x}, expected {want:#x}",
                        effective_seed
                    ));
                }
                prefilled[i] = Some(CampaignResult::Done(JobSuccess {
                    job: i,
                    abbrev: self.jobs[i].profile.abbrev,
                    scheduler: self.jobs[i].scheduler.build().name(),
                    effective_seed: *effective_seed,
                    stats: stats.clone(),
                }));
                adopted += 1;
            }
        }
        Ok(adopted)
    }

    /// Opens the checkpoint writer implied by `opts`: a fresh (compacted) file
    /// when `checkpoint_to` is set — re-emitting adopted records so the new file
    /// stands alone — or append mode on the resume file, or none.
    fn open_writer(
        &self,
        opts: &RunOptions,
        prefilled: &[Option<CampaignResult>],
    ) -> Result<Option<CheckpointWriter>, String> {
        match (&opts.checkpoint_to, &opts.resume_from) {
            (Some(path), _) => {
                let header = CheckpointHeader {
                    seed: self.seed,
                    jobs: self.jobs.len(),
                    fingerprint: self.fingerprint(),
                };
                let w = CheckpointWriter::create(path, header, opts.ckpt_format)?;
                for r in prefilled.iter().flatten() {
                    w.append(r)?;
                }
                Ok(Some(w))
            }
            (None, Some(path)) => Ok(Some(CheckpointWriter::append_to(path)?)),
            (None, None) => Ok(None),
        }
    }

    /// The resilient campaign driver: panic isolation, watchdog, retries,
    /// checkpointing and resume, on `opts.threads` work-stealing workers.
    ///
    /// Returns `Err` only for *setup* problems the caller must resolve (an
    /// invalid or mismatched resume checkpoint, an uncreatable checkpoint
    /// file). Once jobs are running, nothing aborts the sweep: per-job
    /// failures come back as structured [`CampaignResult`] variants and
    /// checkpoint-append errors degrade into
    /// [`CampaignRun::checkpoint_error`].
    ///
    /// Determinism: results are bit-identical for every thread count *and*
    /// for every interrupted/resumed schedule, because job seeds are
    /// position-derived and adopted stats round-trip exactly.
    pub fn run_resilient(&self, opts: &RunOptions) -> Result<CampaignRun, String> {
        let t0 = Instant::now();
        let n = self.jobs.len();

        let mut prefilled: Vec<Option<CampaignResult>> = (0..n).map(|_| None).collect();
        let mut resumed_jobs = 0;
        if let Some(path) = &opts.resume_from {
            let ckpt = Checkpoint::load(path)?;
            resumed_jobs = self.adopt_checkpoint(&ckpt, path, &mut prefilled)?;
        }
        let writer = self.open_writer(opts, &prefilled)?;

        let pending: Vec<usize> = (0..n).filter(|&i| prefilled[i].is_none()).collect();
        let threads = opts.threads.clamp(1, pending.len().max(1));

        let mut job_profiles: Vec<Option<JobProfile>> = (0..n).map(|_| None).collect();
        for (i, slot) in prefilled.iter().enumerate() {
            if let Some(r) = slot {
                job_profiles[i] = Some(JobProfile {
                    job: i,
                    abbrev: r.abbrev(),
                    scheduler: r.scheduler(),
                    worker: 0,
                    secs: 0.0,
                });
            }
        }

        let ckpt_err: Mutex<Option<String>> = Mutex::new(None);
        let note_ckpt = |res: Result<(), String>| {
            if let Err(e) = res {
                ckpt_err.lock().unwrap().get_or_insert(e);
            }
        };

        let mut traces = Vec::new();
        let host_totals: Mutex<HostTotals> = Mutex::new(HostTotals::default());
        let workers;

        if threads <= 1 || pending.len() <= 1 {
            let mut busy = 0.0;
            for &i in &pending {
                let jt = Instant::now();
                let (r, t, hp) = self.run_job_resilient(i, opts);
                let secs = jt.elapsed().as_secs_f64();
                busy += secs;
                if let Some(hp) = hp {
                    host_totals.lock().unwrap().merge(&hp);
                }
                if let Some(w) = &writer {
                    note_ckpt(w.append(&r));
                }
                job_profiles[i] = Some(JobProfile {
                    job: i,
                    abbrev: r.abbrev(),
                    scheduler: r.scheduler(),
                    worker: 0,
                    secs,
                });
                if let Some(t) = t {
                    traces.push((Self::trace_label(&r), t));
                }
                prefilled[i] = Some(r);
            }
            workers = vec![WorkerProfile {
                worker: 0,
                jobs_run: pending.len(),
                steals: 0,
                busy_secs: busy,
            }];
        } else {
            // Deal pending jobs round-robin into per-worker deques. Round-robin
            // (rather than contiguous chunks) interleaves heavy and light
            // workloads, so the initial split is already balanced and stealing
            // is the exception.
            let queues: Vec<Mutex<VecDeque<usize>>> =
                (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
            for (k, &i) in pending.iter().enumerate() {
                queues[k % threads].lock().unwrap().push_back(i);
            }

            type Slot = (CampaignResult, Option<Trace>, JobProfile);
            let slots: Vec<Mutex<Option<Slot>>> = (0..n).map(|_| Mutex::new(None)).collect();
            let worker_slots: Vec<Mutex<Option<WorkerProfile>>> =
                (0..threads).map(|_| Mutex::new(None)).collect();

            std::thread::scope(|scope| {
                for me in 0..threads {
                    let queues = &queues;
                    let slots = &slots;
                    let worker_slots = &worker_slots;
                    let writer = &writer;
                    let note_ckpt = &note_ckpt;
                    let host_totals = &host_totals;
                    scope.spawn(move || {
                        let mut prof =
                            WorkerProfile { worker: me, jobs_run: 0, steals: 0, busy_secs: 0.0 };
                        loop {
                            // Own queue first (front: preserves the dealt order)…
                            let mut stolen = false;
                            let job = queues[me].lock().unwrap().pop_front().or_else(|| {
                                // …then steal from the back of the first non-empty
                                // victim, scanning away from ourselves.
                                (1..threads).find_map(|k| {
                                    let j = queues[(me + k) % threads].lock().unwrap().pop_back();
                                    stolen |= j.is_some();
                                    j
                                })
                            });
                            match job {
                                Some(i) => {
                                    if stolen {
                                        prof.steals += 1;
                                    }
                                    let jt = Instant::now();
                                    let (r, t, hp) = self.run_job_resilient(i, opts);
                                    let secs = jt.elapsed().as_secs_f64();
                                    if let Some(hp) = hp {
                                        host_totals.lock().unwrap().merge(&hp);
                                    }
                                    prof.jobs_run += 1;
                                    prof.busy_secs += secs;
                                    if let Some(w) = writer {
                                        note_ckpt(w.append(&r));
                                    }
                                    let jp = JobProfile {
                                        job: i,
                                        abbrev: r.abbrev(),
                                        scheduler: r.scheduler(),
                                        worker: me,
                                        secs,
                                    };
                                    *slots[i].lock().unwrap() = Some((r, t, jp));
                                }
                                None => break,
                            }
                        }
                        *worker_slots[me].lock().unwrap() = Some(prof);
                    });
                }
            });

            for (i, s) in slots.into_iter().enumerate() {
                if let Some((r, t, jp)) = s.into_inner().unwrap() {
                    if let Some(t) = t {
                        traces.push((Self::trace_label(&r), t));
                    }
                    job_profiles[i] = Some(jp);
                    prefilled[i] = Some(r);
                }
            }
            workers = worker_slots
                .into_iter()
                .map(|w| w.into_inner().unwrap().expect("worker profile filled"))
                .collect();
        }

        let results: Vec<CampaignResult> = prefilled
            .into_iter()
            .map(|s| s.expect("every job was run or adopted"))
            .collect();
        let profile = CampaignProfile {
            threads,
            wall_secs: t0.elapsed().as_secs_f64(),
            workers,
            jobs: job_profiles
                .into_iter()
                .map(|j| j.expect("every job was profiled"))
                .collect(),
            host: opts.hostprof.then(|| {
                let mut totals = host_totals.into_inner().unwrap();
                // Single-process runs contribute exactly one host stamp; the
                // campaign service overrides this with one stamp per worker.
                totals.hosts = vec![HostMeta::capture()];
                totals
            }),
        };
        Ok(CampaignRun {
            results,
            profile,
            traces,
            resumed_jobs,
            checkpoint_error: ckpt_err.into_inner().unwrap(),
        })
    }

    /// Runs every job on the calling thread, in campaign order.
    pub fn run_serial(&self) -> Vec<CampaignResult> {
        self.run_full(1, false).0
    }

    /// The driver behind [`run`](Campaign::run), [`run_profiled`](Campaign::run_profiled)
    /// and [`run_traced`](Campaign::run_traced): runs the campaign on `threads`
    /// workers and returns, in campaign order, the results, the host-side profile,
    /// and (when `traced`) one simulated-time trace per job. Timestamps in the
    /// traces are simulated cycles, so they are identical for every thread count.
    ///
    /// Faults requested via the `LIBRA_FAULT` environment variable are honoured
    /// here, so any CLI path can be poisoned for testing.
    pub fn run_full(
        &self,
        threads: usize,
        traced: bool,
    ) -> (Vec<CampaignResult>, CampaignProfile, Vec<(String, Trace)>) {
        let opts =
            RunOptions { threads, traced, fault: FaultSpec::from_env(), ..RunOptions::default() };
        let run = self
            .run_resilient(&opts)
            .expect("a run without checkpoint files cannot fail setup");
        (run.results, run.profile, run.traces)
    }

    /// Runs the campaign on `threads` worker threads (clamped to at least 1) and
    /// returns results in campaign order, bit-identical to [`Campaign::run_serial`].
    pub fn run(&self, threads: usize) -> Vec<CampaignResult> {
        self.run_full(threads, false).0
    }

    /// [`run`](Campaign::run) plus the host-side wall-clock profile.
    pub fn run_profiled(&self, threads: usize) -> (Vec<CampaignResult>, CampaignProfile) {
        let (results, profile, _) = self.run_full(threads, false);
        (results, profile)
    }

    /// [`run`](Campaign::run) with per-job cycle-level tracing enabled: returns one
    /// labelled [`Trace`] per job, in campaign order. Merge them into one Perfetto
    /// document with [`Trace::chrome_json_multi`]; since timestamps are simulated
    /// cycles, the merged JSON is byte-identical for every `threads` value.
    pub fn run_traced(&self, threads: usize) -> (Vec<CampaignResult>, Vec<(String, Trace)>) {
        let (results, _, traces) = self.run_full(threads, true);
        (results, traces)
    }

    /// Runs the campaign both in parallel and serially, asserting bit-identical
    /// results; returns `(results, parallel_secs, serial_secs)`. This is the CI
    /// smoke entry point — any divergence panics with the first differing job.
    pub fn run_verified(&self, threads: usize) -> (Vec<CampaignResult>, f64, f64) {
        let t0 = Instant::now();
        let par = self.run(threads);
        let par_secs = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let ser = self.run_serial();
        let ser_secs = t1.elapsed().as_secs_f64();
        assert_eq!(par.len(), ser.len());
        for (p, s) in par.iter().zip(&ser) {
            assert_eq!(
                p,
                s,
                "parallel job {} ({} / {}) diverged from the serial run",
                p.job(),
                p.abbrev(),
                p.scheduler()
            );
        }
        (par, par_secs, ser_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbr_common::config::ScreenConfig;
    use tbr_workloads::suite;

    fn small_campaign(seed: u64, points: usize) -> Campaign {
        let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
        let mut c = Campaign::new(seed);
        for p in suite().into_iter().take(points) {
            c.push(&cfg, SchedulerKind::Libra, p, 1);
        }
        c
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let c = small_campaign(0, 5);
        let serial = c.run_serial();
        for threads in [2, 3, 5, 8] {
            let par = c.run(threads);
            assert_eq!(par, serial, "thread count {threads} changed results");
        }
    }

    #[test]
    fn results_come_back_in_campaign_order() {
        let c = small_campaign(7, 6);
        let res = c.run(4);
        for (i, r) in res.iter().enumerate() {
            assert_eq!(r.job(), i);
        }
    }

    #[test]
    fn zero_seed_matches_direct_simulation() {
        let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
        let p = suite().remove(0);
        let mut c = Campaign::new(0);
        c.push(&cfg, SchedulerKind::Libra, p.clone(), 2);
        let res = c.run(2);
        let direct = crate::simulate_sequence(&cfg, SchedulerKind::Libra, &p, 2);
        assert_eq!(res[0].stats(), Some(&direct), "seed 0 must not perturb the canonical suite");
        assert_eq!(res[0].success().unwrap().effective_seed, p.seed);
    }

    #[test]
    fn nonzero_seed_perturbs_each_job_differently() {
        let c = small_campaign(42, 3);
        assert_ne!(c.job_seed(0), c.job_seed(1));
        assert_ne!(c.job_seed(1), c.job_seed(2));
        // Same campaign seed → same derivation; different seed → different.
        let c2 = small_campaign(42, 3);
        assert_eq!(c.job_seed(2), c2.job_seed(2));
        let c3 = small_campaign(43, 3);
        assert_ne!(c.job_seed(0), c3.job_seed(0));
    }

    #[test]
    fn run_verified_smoke() {
        let c = small_campaign(1, 4);
        let (res, _, _) = c.run_verified(2);
        assert_eq!(res.len(), 4);
        assert!(res.iter().all(|r| r.stats().unwrap().total_cycles() > 0));
    }

    #[test]
    fn empty_and_single_job_campaigns_work() {
        let c = Campaign::new(0);
        assert!(c.is_empty());
        assert!(c.run(4).is_empty());
        let c1 = small_campaign(0, 1);
        assert_eq!(c1.run(8).len(), 1);
    }

    #[test]
    fn profile_accounts_for_every_job_and_worker() {
        let c = small_campaign(0, 5);
        let (res, prof) = c.run_profiled(3);
        assert_eq!(res.len(), 5);
        assert_eq!(prof.threads, 3);
        assert_eq!(prof.workers.len(), 3);
        assert_eq!(prof.jobs.len(), 5);
        assert_eq!(prof.workers.iter().map(|w| w.jobs_run).sum::<usize>(), 5);
        assert!(prof.wall_secs > 0.0);
        for (i, j) in prof.jobs.iter().enumerate() {
            assert_eq!(j.job, i);
            assert!(j.worker < 3);
            assert!(j.secs >= 0.0);
        }
        let u = prof.utilization();
        assert!((0.0..=1.0).contains(&u), "utilization {u} out of range");
        // CSVs: header + one row per worker / per job.
        assert_eq!(prof.workers_csv().lines().count(), 1 + 3);
        assert_eq!(prof.jobs_csv().lines().count(), 1 + 5);
    }

    #[test]
    fn serial_path_profile_uses_worker_zero() {
        let c = small_campaign(0, 2);
        let (_, prof) = c.run_profiled(1);
        assert_eq!(prof.threads, 1);
        assert_eq!(prof.workers.len(), 1);
        assert_eq!(prof.workers[0].steals, 0);
        assert!(prof.jobs.iter().all(|j| j.worker == 0));
    }

    #[test]
    fn tracing_changes_no_results_and_labels_every_job() {
        let c = small_campaign(0, 3);
        let plain = c.run(2);
        let (traced, traces) = c.run_traced(2);
        assert_eq!(traced, plain, "tracing must be observation-only");
        assert_eq!(traces.len(), 3);
        for (i, (label, trace)) in traces.iter().enumerate() {
            assert!(label.starts_with(&format!("job{i} ")), "bad label {label:?}");
            assert!(!trace.events.is_empty(), "job {i} produced an empty trace");
        }
    }

    #[test]
    fn merged_trace_json_is_stable_across_thread_counts() {
        let c = small_campaign(0, 3);
        let (_, t1) = c.run_traced(1);
        let (_, t3) = c.run_traced(3);
        assert_eq!(
            Trace::chrome_json_multi(&t1),
            Trace::chrome_json_multi(&t3),
            "simulated-time stamps must make the merged trace thread-count invariant"
        );
    }

    #[test]
    fn grid_builds_the_cross_product() {
        let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
        let profiles: Vec<_> = suite().into_iter().take(3).collect();
        let scheds = [SchedulerKind::SingleZOrder, SchedulerKind::Libra];
        let c = Campaign::grid(0, &cfg, &scheds, &profiles, 2);
        assert_eq!(c.len(), 6);
        assert_eq!(c.jobs()[0].profile.abbrev, profiles[0].abbrev);
        assert_eq!(c.jobs()[1].scheduler, SchedulerKind::Libra);
    }

    #[test]
    fn fingerprint_is_stable_and_sweep_sensitive() {
        let a = small_campaign(5, 3);
        assert_eq!(a.fingerprint(), small_campaign(5, 3).fingerprint());
        assert_ne!(a.fingerprint(), small_campaign(5, 4).fingerprint(), "job list feeds in");
        assert_ne!(a.fingerprint(), small_campaign(6, 3).fingerprint(), "seed feeds in");
    }

    #[test]
    fn injected_panic_is_isolated_and_reported() {
        let c = small_campaign(0, 3);
        let opts = RunOptions {
            retries: 0,
            fault: Some(FaultSpec::parse("panic:1").unwrap()),
            ..RunOptions::default()
        };
        let run = c.run_resilient(&opts).unwrap();
        assert!(run.results[0].is_success() && run.results[2].is_success());
        match &run.results[1] {
            CampaignResult::Failed { attempts: 1, panic_msg, .. } => {
                assert!(panic_msg.contains("injected fault"), "bad message {panic_msg:?}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        assert!(run.results[1].failure_line().unwrap().contains("FAILED"));
        let s = run.summary();
        assert_eq!((s.total, s.done, s.failed, s.timed_out), (3, 2, 1, 0));
        assert!(s.render().starts_with("2/3 jobs succeeded"), "{}", s.render());
    }

    #[test]
    fn transient_panic_is_healed_by_the_default_retry() {
        let c = small_campaign(0, 3);
        let opts = RunOptions {
            fault: Some(FaultSpec::parse("panic-once:1").unwrap()),
            ..RunOptions::default()
        };
        let run = c.run_resilient(&opts).unwrap();
        let clean: Vec<_> = c.run_serial();
        assert_eq!(run.results, clean, "a retried transient fault must leave no residue");
    }

    #[test]
    fn timeout_injection_trips_the_watchdog() {
        let c = small_campaign(0, 2);
        let opts = RunOptions {
            retries: 0,
            fault: Some(FaultSpec::parse("timeout:0").unwrap()),
            ..RunOptions::default()
        };
        let run = c.run_resilient(&opts).unwrap();
        match &run.results[0] {
            CampaignResult::TimedOut { budget_cycles: 0, spent_cycles, .. } => {
                assert!(*spent_cycles > 0, "watchdog must report the cycles it measured");
            }
            other => panic!("expected TimedOut, got {other:?}"),
        }
        assert!(run.results[1].is_success());
    }

    #[test]
    fn generous_budget_changes_nothing() {
        let c = small_campaign(0, 2);
        let opts = RunOptions { budget_cycles: Some(u64::MAX), ..RunOptions::default() };
        let run = c.run_resilient(&opts).unwrap();
        assert_eq!(run.results, c.run_serial(), "an unreached budget must be invisible");
    }
}
