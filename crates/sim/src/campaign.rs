//! Deterministic parallel simulation-campaign driver.
//!
//! Every figure of the paper is a sweep: workload × scheduler × GPU configuration,
//! each point one independent [`simulate_sequence`](crate::simulate_sequence) run.
//! The cycle-level simulator itself is strictly single-threaded, but the points
//! share nothing, so campaign throughput scales with cores — the classic
//! "parallelize across simulation instances, not within one" result from the
//! architecture-simulation literature.
//!
//! # Determinism scheme
//!
//! Parallel execution is **bit-identical** to serial execution, regardless of
//! thread count or scheduling jitter:
//!
//! 1. *Per-job seeds are position-derived.* Job `i` simulates its profile with an
//!    effective seed `profile.seed ^ splitmix64_mix(campaign_seed ^ i·φ64)` — a pure
//!    function of `(campaign_seed, i)`, never of which worker ran it or when.
//!    Campaign seed 0 means "no perturbation": the canonical paper suite.
//! 2. *Jobs share no mutable state.* Each worker builds its own GPU, caches, DRAM
//!    and scheduler from the job spec; the simulator is deterministic
//!    (same inputs → same cycle counts).
//! 3. *Ordered result collection.* Workers write into the result slot indexed by
//!    the job's position, so the returned `Vec` is in campaign order — the same
//!    order `run_serial` produces — no matter which thread finished first.
//!
//! Work distribution uses a work-stealing queue: jobs are dealt round-robin into
//! per-worker deques; a worker pops from the front of its own deque and, when
//! empty, steals from the back of a victim's. Stealing only changes *who* runs a
//! job, never *what* the job computes, so the guarantee above is unaffected.
//!
//! ```
//! use tbr_common::config::{GpuConfig, ScreenConfig};
//! use tbr_sim::campaign::Campaign;
//! use tbr_sim::SchedulerKind;
//! use tbr_workloads::suite;
//!
//! let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
//! let mut c = Campaign::new(0);
//! for p in suite().into_iter().take(2) {
//!     c.push(&cfg, SchedulerKind::Libra, p, 1);
//! }
//! let parallel = c.run(2);
//! let serial = c.run_serial();
//! assert_eq!(parallel, serial); // bit-identical, in campaign order
//! ```

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

use libra::scheduler::SchedulerKind;
use tbr_common::config::GpuConfig;
use tbr_common::rng::splitmix64_mix;
use tbr_common::stats::SequenceStats;
use tbr_common::trace::{self, Trace};
use tbr_workloads::BenchmarkProfile;

use crate::gpu::simulate_sequence;

/// The golden-gamma increment of SplitMix64 — spaces job indices far apart in the
/// mixer's input domain so adjacent jobs get decorrelated seeds.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// One independent simulation point of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignJob {
    /// GPU configuration of this point.
    pub cfg: GpuConfig,
    /// Tile scheduler of this point.
    pub scheduler: SchedulerKind,
    /// Workload profile (its `seed` is perturbed per [`Campaign::job_seed`]).
    pub profile: BenchmarkProfile,
    /// Frames to simulate.
    pub frames: u32,
}

/// One finished point: the job's position, its effective seed, and its stats.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// Index of the job in the campaign (results come back in this order).
    pub job: usize,
    /// Workload abbreviation (for reports).
    pub abbrev: &'static str,
    /// Scheduler name (for reports).
    pub scheduler: &'static str,
    /// The effective workload seed the job ran with.
    pub effective_seed: u64,
    /// Full per-frame statistics of the sequence.
    pub stats: SequenceStats,
}

/// Host-side wall-clock profile of one worker thread of a campaign run.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerProfile {
    /// Worker index (0-based).
    pub worker: usize,
    /// Jobs this worker completed.
    pub jobs_run: usize,
    /// Jobs obtained by stealing from another worker's deque.
    pub steals: u64,
    /// Wall-clock seconds spent inside jobs (excludes queue waits).
    pub busy_secs: f64,
}

/// Host-side wall-clock profile of one campaign job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobProfile {
    /// Job index in campaign order.
    pub job: usize,
    /// Workload abbreviation.
    pub abbrev: &'static str,
    /// Scheduler name.
    pub scheduler: &'static str,
    /// Worker that ran the job.
    pub worker: usize,
    /// Wall-clock seconds the job took.
    pub secs: f64,
}

/// Host-side profile of a whole campaign run: wall-clock, per-worker utilization
/// and steal counts, per-job timings. Written to `bench_results/` by
/// `libra-sim campaign --profile`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignProfile {
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall-clock seconds.
    pub wall_secs: f64,
    /// One entry per worker.
    pub workers: Vec<WorkerProfile>,
    /// One entry per job, in campaign order.
    pub jobs: Vec<JobProfile>,
}

impl CampaignProfile {
    /// Mean worker utilization in `[0, 1]`: busy time over `threads × wall`.
    pub fn utilization(&self) -> f64 {
        let busy: f64 = self.workers.iter().map(|w| w.busy_secs).sum();
        let denom = self.threads as f64 * self.wall_secs;
        if denom <= 0.0 {
            0.0
        } else {
            (busy / denom).min(1.0)
        }
    }

    /// Per-worker CSV (`worker,jobs_run,steals,busy_secs,utilization`).
    pub fn workers_csv(&self) -> String {
        let mut out = String::from("worker,jobs_run,steals,busy_secs,utilization\n");
        for w in &self.workers {
            let util = if self.wall_secs > 0.0 { w.busy_secs / self.wall_secs } else { 0.0 };
            out.push_str(&format!(
                "{},{},{},{:.6},{:.4}\n",
                w.worker, w.jobs_run, w.steals, w.busy_secs, util
            ));
        }
        out
    }

    /// Per-job CSV (`job,abbrev,scheduler,worker,secs`).
    pub fn jobs_csv(&self) -> String {
        let mut out = String::from("job,abbrev,scheduler,worker,secs\n");
        for j in &self.jobs {
            out.push_str(&format!(
                "{},{},{},{},{:.6}\n",
                j.job, j.abbrev, j.scheduler, j.worker, j.secs
            ));
        }
        out
    }
}

/// A batch of independent simulation jobs with a campaign-level seed.
#[derive(Debug, Clone, Default)]
pub struct Campaign {
    /// Campaign seed. 0 leaves every profile's canonical seed untouched; any other
    /// value resamples each job's scene layout deterministically.
    pub seed: u64,
    jobs: Vec<CampaignJob>,
}

impl Campaign {
    /// Creates an empty campaign.
    pub fn new(seed: u64) -> Self {
        Self { seed, jobs: Vec::new() }
    }

    /// Appends one simulation point.
    pub fn push(
        &mut self,
        cfg: &GpuConfig,
        scheduler: SchedulerKind,
        profile: BenchmarkProfile,
        frames: u32,
    ) {
        self.jobs.push(CampaignJob { cfg: cfg.clone(), scheduler, profile, frames });
    }

    /// Builds the full cross product `profiles × schedulers` on one configuration —
    /// the shape of most figure sweeps.
    pub fn grid(
        seed: u64,
        cfg: &GpuConfig,
        schedulers: &[SchedulerKind],
        profiles: &[BenchmarkProfile],
        frames: u32,
    ) -> Self {
        let mut c = Self::new(seed);
        for p in profiles {
            for &s in schedulers {
                c.push(cfg, s, p.clone(), frames);
            }
        }
        c
    }

    /// The jobs in campaign order.
    pub fn jobs(&self) -> &[CampaignJob] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the campaign is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The seed perturbation of job `index`: a pure function of
    /// `(campaign seed, index)`, independent of worker assignment. Campaign seed 0
    /// disables perturbation so the canonical suite (the paper's fixed layouts)
    /// simulates as-is.
    pub fn job_seed(&self, index: usize) -> u64 {
        if self.seed == 0 {
            0
        } else {
            splitmix64_mix(self.seed ^ (index as u64).wrapping_mul(GOLDEN_GAMMA))
        }
    }

    /// Runs job `index` to completion (the single shared code path of the serial
    /// and parallel drivers — both orders therefore compute bit-identical stats).
    fn run_job(&self, index: usize) -> CampaignResult {
        let job = &self.jobs[index];
        let mut profile = job.profile.clone();
        let effective_seed = profile.seed ^ self.job_seed(index);
        profile.seed = effective_seed;
        let stats = simulate_sequence(&job.cfg, job.scheduler, &profile, job.frames);
        CampaignResult {
            job: index,
            abbrev: job.profile.abbrev,
            scheduler: job.scheduler.build().name(),
            effective_seed,
            stats,
        }
    }

    /// Runs job `index` with an optional per-job trace collector installed on the
    /// calling thread. Tracing is observation-only, so the returned stats are
    /// bit-identical either way.
    fn run_job_maybe_traced(&self, index: usize, traced: bool) -> (CampaignResult, Option<Trace>) {
        if traced {
            trace::start();
        }
        let r = self.run_job(index);
        let t = if traced { trace::finish() } else { None };
        (r, t)
    }

    fn trace_label(r: &CampaignResult) -> String {
        format!("job{} {} {}", r.job, r.abbrev, r.scheduler)
    }

    /// Runs every job on the calling thread, in campaign order.
    pub fn run_serial(&self) -> Vec<CampaignResult> {
        (0..self.jobs.len()).map(|i| self.run_job(i)).collect()
    }

    /// The full driver behind [`run`](Campaign::run), [`run_profiled`](Campaign::run_profiled)
    /// and [`run_traced`](Campaign::run_traced): runs the campaign on `threads`
    /// workers and returns, in campaign order, the results, the host-side profile,
    /// and (when `traced`) one simulated-time trace per job. Timestamps in the
    /// traces are simulated cycles, so they are identical for every thread count.
    pub fn run_full(
        &self,
        threads: usize,
        traced: bool,
    ) -> (Vec<CampaignResult>, CampaignProfile, Vec<(String, Trace)>) {
        let t0 = Instant::now();
        let threads = threads.clamp(1, self.jobs.len().max(1));

        if threads <= 1 || self.jobs.len() <= 1 {
            let mut results = Vec::with_capacity(self.jobs.len());
            let mut traces = Vec::new();
            let mut job_profiles = Vec::with_capacity(self.jobs.len());
            let mut busy = 0.0;
            for i in 0..self.jobs.len() {
                let jt = Instant::now();
                let (r, t) = self.run_job_maybe_traced(i, traced);
                let secs = jt.elapsed().as_secs_f64();
                busy += secs;
                job_profiles.push(JobProfile {
                    job: i,
                    abbrev: r.abbrev,
                    scheduler: r.scheduler,
                    worker: 0,
                    secs,
                });
                if let Some(t) = t {
                    traces.push((Self::trace_label(&r), t));
                }
                results.push(r);
            }
            let profile = CampaignProfile {
                threads: 1,
                wall_secs: t0.elapsed().as_secs_f64(),
                workers: vec![WorkerProfile {
                    worker: 0,
                    jobs_run: self.jobs.len(),
                    steals: 0,
                    busy_secs: busy,
                }],
                jobs: job_profiles,
            };
            return (results, profile, traces);
        }

        // Deal jobs round-robin into per-worker deques. Round-robin (rather than
        // contiguous chunks) interleaves heavy and light workloads, so the initial
        // split is already balanced and stealing is the exception.
        let queues: Vec<Mutex<VecDeque<usize>>> =
            (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, _) in self.jobs.iter().enumerate() {
            queues[i % threads].lock().unwrap().push_back(i);
        }

        type Slot = (CampaignResult, Option<Trace>, JobProfile);
        let slots: Vec<Mutex<Option<Slot>>> = self.jobs.iter().map(|_| Mutex::new(None)).collect();
        let worker_slots: Vec<Mutex<Option<WorkerProfile>>> =
            (0..threads).map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for me in 0..threads {
                let queues = &queues;
                let slots = &slots;
                let worker_slots = &worker_slots;
                scope.spawn(move || {
                    let mut prof =
                        WorkerProfile { worker: me, jobs_run: 0, steals: 0, busy_secs: 0.0 };
                    loop {
                        // Own queue first (front: preserves the dealt order)…
                        let mut stolen = false;
                        let job = queues[me].lock().unwrap().pop_front().or_else(|| {
                            // …then steal from the back of the first non-empty
                            // victim, scanning away from ourselves.
                            (1..threads).find_map(|k| {
                                let j = queues[(me + k) % threads].lock().unwrap().pop_back();
                                stolen |= j.is_some();
                                j
                            })
                        });
                        match job {
                            Some(i) => {
                                if stolen {
                                    prof.steals += 1;
                                }
                                let jt = Instant::now();
                                let (r, t) = self.run_job_maybe_traced(i, traced);
                                let secs = jt.elapsed().as_secs_f64();
                                prof.jobs_run += 1;
                                prof.busy_secs += secs;
                                let jp = JobProfile {
                                    job: i,
                                    abbrev: r.abbrev,
                                    scheduler: r.scheduler,
                                    worker: me,
                                    secs,
                                };
                                *slots[i].lock().unwrap() = Some((r, t, jp));
                            }
                            None => break,
                        }
                    }
                    *worker_slots[me].lock().unwrap() = Some(prof);
                });
            }
        });

        let mut results = Vec::with_capacity(self.jobs.len());
        let mut traces = Vec::new();
        let mut job_profiles = Vec::with_capacity(self.jobs.len());
        for s in slots {
            let (r, t, jp) = s.into_inner().unwrap().expect("every job slot filled");
            if let Some(t) = t {
                traces.push((Self::trace_label(&r), t));
            }
            job_profiles.push(jp);
            results.push(r);
        }
        let profile = CampaignProfile {
            threads,
            wall_secs: t0.elapsed().as_secs_f64(),
            workers: worker_slots
                .into_iter()
                .map(|w| w.into_inner().unwrap().expect("worker profile filled"))
                .collect(),
            jobs: job_profiles,
        };
        (results, profile, traces)
    }

    /// Runs the campaign on `threads` worker threads (clamped to at least 1) and
    /// returns results in campaign order, bit-identical to [`Campaign::run_serial`].
    pub fn run(&self, threads: usize) -> Vec<CampaignResult> {
        self.run_full(threads, false).0
    }

    /// [`run`](Campaign::run) plus the host-side wall-clock profile.
    pub fn run_profiled(&self, threads: usize) -> (Vec<CampaignResult>, CampaignProfile) {
        let (results, profile, _) = self.run_full(threads, false);
        (results, profile)
    }

    /// [`run`](Campaign::run) with per-job cycle-level tracing enabled: returns one
    /// labelled [`Trace`] per job, in campaign order. Merge them into one Perfetto
    /// document with [`Trace::chrome_json_multi`]; since timestamps are simulated
    /// cycles, the merged JSON is byte-identical for every `threads` value.
    pub fn run_traced(&self, threads: usize) -> (Vec<CampaignResult>, Vec<(String, Trace)>) {
        let (results, _, traces) = self.run_full(threads, true);
        (results, traces)
    }

    /// Runs the campaign both in parallel and serially, asserting bit-identical
    /// results; returns `(results, parallel_secs, serial_secs)`. This is the CI
    /// smoke entry point — any divergence panics with the first differing job.
    pub fn run_verified(&self, threads: usize) -> (Vec<CampaignResult>, f64, f64) {
        let t0 = Instant::now();
        let par = self.run(threads);
        let par_secs = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let ser = self.run_serial();
        let ser_secs = t1.elapsed().as_secs_f64();
        assert_eq!(par.len(), ser.len());
        for (p, s) in par.iter().zip(&ser) {
            assert_eq!(
                p, s,
                "parallel job {} ({} / {}) diverged from the serial run",
                p.job, p.abbrev, p.scheduler
            );
        }
        (par, par_secs, ser_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbr_common::config::ScreenConfig;
    use tbr_workloads::suite;

    fn small_campaign(seed: u64, points: usize) -> Campaign {
        let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
        let mut c = Campaign::new(seed);
        for p in suite().into_iter().take(points) {
            c.push(&cfg, SchedulerKind::Libra, p, 1);
        }
        c
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let c = small_campaign(0, 5);
        let serial = c.run_serial();
        for threads in [2, 3, 5, 8] {
            let par = c.run(threads);
            assert_eq!(par, serial, "thread count {threads} changed results");
        }
    }

    #[test]
    fn results_come_back_in_campaign_order() {
        let c = small_campaign(7, 6);
        let res = c.run(4);
        for (i, r) in res.iter().enumerate() {
            assert_eq!(r.job, i);
        }
    }

    #[test]
    fn zero_seed_matches_direct_simulation() {
        let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
        let p = suite().remove(0);
        let mut c = Campaign::new(0);
        c.push(&cfg, SchedulerKind::Libra, p.clone(), 2);
        let res = c.run(2);
        let direct = simulate_sequence(&cfg, SchedulerKind::Libra, &p, 2);
        assert_eq!(res[0].stats, direct, "seed 0 must not perturb the canonical suite");
        assert_eq!(res[0].effective_seed, p.seed);
    }

    #[test]
    fn nonzero_seed_perturbs_each_job_differently() {
        let c = small_campaign(42, 3);
        assert_ne!(c.job_seed(0), c.job_seed(1));
        assert_ne!(c.job_seed(1), c.job_seed(2));
        // Same campaign seed → same derivation; different seed → different.
        let c2 = small_campaign(42, 3);
        assert_eq!(c.job_seed(2), c2.job_seed(2));
        let c3 = small_campaign(43, 3);
        assert_ne!(c.job_seed(0), c3.job_seed(0));
    }

    #[test]
    fn run_verified_smoke() {
        let c = small_campaign(1, 4);
        let (res, _, _) = c.run_verified(2);
        assert_eq!(res.len(), 4);
        assert!(res.iter().all(|r| r.stats.total_cycles() > 0));
    }

    #[test]
    fn empty_and_single_job_campaigns_work() {
        let c = Campaign::new(0);
        assert!(c.is_empty());
        assert!(c.run(4).is_empty());
        let c1 = small_campaign(0, 1);
        assert_eq!(c1.run(8).len(), 1);
    }

    #[test]
    fn profile_accounts_for_every_job_and_worker() {
        let c = small_campaign(0, 5);
        let (res, prof) = c.run_profiled(3);
        assert_eq!(res.len(), 5);
        assert_eq!(prof.threads, 3);
        assert_eq!(prof.workers.len(), 3);
        assert_eq!(prof.jobs.len(), 5);
        assert_eq!(prof.workers.iter().map(|w| w.jobs_run).sum::<usize>(), 5);
        assert!(prof.wall_secs > 0.0);
        for (i, j) in prof.jobs.iter().enumerate() {
            assert_eq!(j.job, i);
            assert!(j.worker < 3);
            assert!(j.secs >= 0.0);
        }
        let u = prof.utilization();
        assert!((0.0..=1.0).contains(&u), "utilization {u} out of range");
        // CSVs: header + one row per worker / per job.
        assert_eq!(prof.workers_csv().lines().count(), 1 + 3);
        assert_eq!(prof.jobs_csv().lines().count(), 1 + 5);
    }

    #[test]
    fn serial_path_profile_uses_worker_zero() {
        let c = small_campaign(0, 2);
        let (_, prof) = c.run_profiled(1);
        assert_eq!(prof.threads, 1);
        assert_eq!(prof.workers.len(), 1);
        assert_eq!(prof.workers[0].steals, 0);
        assert!(prof.jobs.iter().all(|j| j.worker == 0));
    }

    #[test]
    fn tracing_changes_no_results_and_labels_every_job() {
        let c = small_campaign(0, 3);
        let plain = c.run(2);
        let (traced, traces) = c.run_traced(2);
        assert_eq!(traced, plain, "tracing must be observation-only");
        assert_eq!(traces.len(), 3);
        for (i, (label, trace)) in traces.iter().enumerate() {
            assert!(label.starts_with(&format!("job{i} ")), "bad label {label:?}");
            assert!(!trace.events.is_empty(), "job {i} produced an empty trace");
        }
    }

    #[test]
    fn merged_trace_json_is_stable_across_thread_counts() {
        let c = small_campaign(0, 3);
        let (_, t1) = c.run_traced(1);
        let (_, t3) = c.run_traced(3);
        assert_eq!(
            Trace::chrome_json_multi(&t1),
            Trace::chrome_json_multi(&t3),
            "simulated-time stamps must make the merged trace thread-count invariant"
        );
    }

    #[test]
    fn grid_builds_the_cross_product() {
        let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
        let profiles: Vec<_> = suite().into_iter().take(3).collect();
        let scheds = [SchedulerKind::SingleZOrder, SchedulerKind::Libra];
        let c = Campaign::grid(0, &cfg, &scheds, &profiles, 2);
        assert_eq!(c.len(), 6);
        assert_eq!(c.jobs()[0].profile.abbrev, profiles[0].abbrev);
        assert_eq!(c.jobs()[1].scheduler, SchedulerKind::Libra);
    }
}
