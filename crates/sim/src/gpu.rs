//! The frame loop: [`GpuSimulator`] renders frame sequences with any scheduler and
//! closes LIBRA's feedback loop (profile frame *n* → schedule frame *n + 1*).

use libra::elimination::ReCache;
use libra::feedback::FrameFeedback;
use libra::hw_cost;
use libra::scheduler::{SchedulerKind, TileScheduler};
use tbr_common::config::GpuConfig;
use tbr_common::ids::FrameId;
use tbr_common::mechanism::MechanismSpec;
use tbr_common::metrics::MetricsRegistry;
use tbr_common::stats::{FrameStats, SequenceStats};
use tbr_common::trace::{self, Track};
use tbr_common::Cycle;
use tbr_geom::Scene;
use tbr_mem::hierarchy::{L1Cache, MemoryHierarchy};
use tbr_raster::raster_unit::RasterUnit;
use tbr_workloads::{BenchmarkProfile, SceneGenerator};

use crate::geometry_phase::run_geometry_phase;
use crate::raster_phase::run_raster_phase;

/// A complete simulated GPU with a pluggable tile scheduler.
pub struct GpuSimulator {
    cfg: GpuConfig,
    hier: MemoryHierarchy,
    vertex_l1: L1Cache,
    rus: Vec<RasterUnit>,
    scheduler: Box<dyn TileScheduler>,
    prev_feedback: Option<FrameFeedback>,
    frame_no: u32,
    metrics: MetricsRegistry,
    /// Optional mechanism axis (Rendering Elimination / WaSP); default none.
    mechanism: MechanismSpec,
    /// RE's per-tile signature cache, carried frame to frame.
    re_cache: ReCache,
    /// Global-timeline offset of the current frame. Phases restart local time at
    /// 0; the tracer's time base is advanced so a whole sequence lands on one
    /// continuous timeline. Pure observation state — never read by the model.
    trace_base: Cycle,
}

impl GpuSimulator {
    /// Builds the GPU.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (call [`GpuConfig::validate`] first
    /// for a recoverable check).
    pub fn new(cfg: GpuConfig, scheduler: SchedulerKind) -> Self {
        Self::with_mechanism(cfg, scheduler, MechanismSpec::default())
    }

    /// Builds the GPU with an explicit mechanism axis (Rendering Elimination
    /// and/or WaSP layered on top of `scheduler`).
    ///
    /// # Panics
    /// Panics if the configuration is invalid (call [`GpuConfig::validate`] first
    /// for a recoverable check).
    pub fn with_mechanism(
        cfg: GpuConfig,
        scheduler: SchedulerKind,
        mechanism: MechanismSpec,
    ) -> Self {
        cfg.validate().expect("invalid GPU configuration");
        let mut hier = MemoryHierarchy::new(cfg.l2_cache, cfg.dram, cfg.dram_interval_cycles);
        hier.ideal = cfg.ideal_memory;
        let vertex_l1 = L1Cache::new(cfg.vertex_cache);
        let rus = (0..cfg.num_raster_units).map(|_| RasterUnit::new(&cfg)).collect();
        Self {
            scheduler: scheduler.build(),
            hier,
            vertex_l1,
            rus,
            prev_feedback: None,
            frame_no: 0,
            metrics: MetricsRegistry::new(),
            mechanism,
            re_cache: ReCache::new(),
            trace_base: 0,
            cfg,
        }
    }

    /// The metrics published so far (one label set per rendered frame).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The mechanism axis this GPU runs with.
    pub fn mechanism(&self) -> MechanismSpec {
        self.mechanism
    }

    /// The configuration this GPU was built with.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// The scheduler's name (for reports).
    pub fn scheduler_name(&self) -> &'static str {
        self.scheduler.name()
    }

    /// Renders one frame and returns its statistics. Cache contents stay warm across
    /// frames (as in real hardware); timing restarts at cycle 0 each frame.
    pub fn render_frame(&mut self, scene: &Scene) -> FrameStats {
        let traced = trace::is_enabled();
        if traced {
            trace::set_time_base(self.trace_base);
        }
        // ---- Geometry phase (sort-middle front half). The LIBRA ranking runs in
        // parallel with it (§III-E), so the phase costs max(geometry, ranking).
        let geo = run_geometry_phase(&self.cfg, &mut self.vertex_l1, &mut self.hier, scene);
        let vertex_cache = self.vertex_l1.end_frame();
        let (geo_l2, geo_dram) = self.hier.end_frame();

        let mut plan = self.scheduler.plan_frame(&self.cfg.screen, self.prev_feedback.as_ref());
        let mut geometry_cycles = geo.cycles.max(plan.ranking_cycles);

        let frame_label = self.frame_no.to_string();
        plan.publish_metrics(&mut self.metrics, &[("frame", &frame_label)]);

        // ---- Rendering Elimination: hash this frame's per-tile inputs, discard
        // tiles identical to the previous frame. The signature unit hashes the
        // parameter-buffer stream during binning, so its cycles fold into the
        // geometry phase like the ranking unit's (max, not add).
        if self.mechanism.re {
            let sigs = tbr_tiling::signature::frame_signatures(
                &geo.tris,
                &geo.bins,
                self.mechanism.re_oracle,
            );
            geometry_cycles = geometry_cycles.max(hw_cost::signature_cycles(sigs.bytes_hashed));
            let bytes_hashed = sigs.bytes_hashed;
            let decision = self.re_cache.observe(sigs.sigs, sigs.words);
            if !self.mechanism.re_oracle {
                // Oracle mode renders everything and only counts; otherwise
                // matching tiles leave the plan before any driver sees it.
                let removed = plan.retain_tiles(|t| !decision.matched[t.index()]);
                debug_assert_eq!(removed as u64, decision.discarded);
            }
            let labels = [("frame", frame_label.as_str())];
            self.metrics.add_counter("re_tiles_checked", &labels, decision.checked);
            self.metrics.add_counter("re_tiles_discarded", &labels, decision.discarded);
            self.metrics.add_counter("re_signature_bytes", &labels, bytes_hashed);
            self.metrics
                .add_counter("re_false_negatives", &labels, decision.false_negatives);
            if traced {
                trace::instant_args(
                    Track::Scheduler,
                    "re discard",
                    0,
                    vec![
                        ("frame", frame_label.clone()),
                        ("checked", decision.checked.to_string()),
                        ("discarded", decision.discarded.to_string()),
                        ("false_negatives", decision.false_negatives.to_string()),
                    ],
                );
            }
        }

        if traced {
            trace::span_args(
                Track::Phases,
                "geometry",
                0,
                geometry_cycles,
                vec![("frame", frame_label.clone())],
            );
            trace::instant_args(
                Track::Scheduler,
                "plan",
                0,
                vec![
                    ("frame", frame_label.clone()),
                    ("order", format!("{:?}", plan.order)),
                    ("supertile", plan.supertile_size.to_string()),
                    ("hot_cold", plan.hot_cold.to_string()),
                ],
            );
            // Raster-phase events restart local time at 0; shift them past the
            // geometry phase on the global timeline.
            trace::set_time_base(self.trace_base + geometry_cycles);
        }

        // ---- Raster phase.
        let raster = run_raster_phase(
            &self.cfg,
            &mut self.rus,
            &mut self.hier,
            &mut plan,
            &geo.tris,
            &geo.bins,
            self.mechanism,
        );
        debug_assert!(plan.is_exhausted(), "raster phase must consume the whole plan");
        if self.mechanism.wasp {
            let labels = [("frame", frame_label.as_str())];
            self.metrics
                .add_counter("wasp_engaged_tiles", &labels, raster.wasp_engaged_tiles);
            self.metrics
                .add_counter("wasp_spearhead_warps", &labels, raster.wasp_spearhead_warps);
            self.metrics
                .add_counter("wasp_reordered_tiles", &labels, raster.wasp_reordered_tiles);
            if traced {
                trace::instant_args(
                    Track::Scheduler,
                    "wasp",
                    0,
                    vec![
                        ("frame", frame_label.clone()),
                        ("engaged_tiles", raster.wasp_engaged_tiles.to_string()),
                        ("spearhead_warps", raster.wasp_spearhead_warps.to_string()),
                        ("reordered_tiles", raster.wasp_reordered_tiles.to_string()),
                    ],
                );
            }
        }
        if traced {
            trace::span_args(
                Track::Phases,
                "raster",
                0,
                raster.raster_cycles,
                vec![("frame", frame_label.clone())],
            );
        }

        // ---- Collect per-frame counters.
        let mut texture_cache = tbr_common::stats::CacheStats::default();
        let mut tile_cache = tbr_common::stats::CacheStats::default();
        for ru in &mut self.rus {
            let (tex, tile) = ru.end_frame();
            texture_cache.merge(&tex);
            tile_cache.merge(&tile);
        }
        let (mut l2_cache, mut dram) = self.hier.end_frame();
        l2_cache.merge(&geo_l2);
        dram.merge(&geo_dram);

        let stats = FrameStats {
            frame: FrameId(self.frame_no),
            geometry_cycles,
            raster_cycles: raster.raster_cycles,
            vertex_cache,
            tile_cache,
            texture_cache,
            l2_cache,
            dram,
            heatmap: raster.heatmap.clone(),
            vertices: geo.counts.vertices_shaded,
            primitives: geo.counts.prims_out,
            fragments: raster.fragments,
            warps: raster.warps,
            instructions: raster.instructions,
            texture_requests: raster.tex_requests,
            texture_latency_sum: raster.tex_latency_sum,
            texture_fill_lines: raster.fill_lines,
            texture_unique_lines: raster.unique_lines,
            micro_events: geo.events + raster.events,
        };

        stats.publish(&mut self.metrics, &[("frame", &frame_label)]);
        self.trace_base += stats.total_cycles();
        if traced {
            trace::set_time_base(self.trace_base);
        }

        // ---- Close the feedback loop for the next frame.
        self.prev_feedback = Some(FrameFeedback::new(
            raster.heatmap,
            raster.raster_cycles,
            stats.texture_cache.hit_ratio(),
        ));
        self.frame_no += 1;
        stats
    }

    /// Renders `frames` consecutive frames of a benchmark.
    pub fn render_sequence(&mut self, profile: &BenchmarkProfile, frames: u32) -> SequenceStats {
        let gen = SceneGenerator::new(profile, &self.cfg.screen);
        let mut seq = SequenceStats::default();
        for f in 0..frames {
            let scene = gen.scene(f);
            seq.frames.push(self.render_frame(&scene));
        }
        seq
    }
}

impl core::fmt::Debug for GpuSimulator {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("GpuSimulator")
            .field("cfg", &self.cfg)
            .field("scheduler", &self.scheduler.name())
            .field("mechanism", &self.mechanism)
            .field("frame_no", &self.frame_no)
            .finish()
    }
}

/// Renders a single scene on a fresh GPU (convenience for tests/examples).
pub fn simulate_frame(cfg: &GpuConfig, scheduler: SchedulerKind, scene: &Scene) -> FrameStats {
    GpuSimulator::new(cfg.clone(), scheduler).render_frame(scene)
}

/// Renders a benchmark sequence on a fresh GPU (convenience for the harness).
pub fn simulate_sequence(
    cfg: &GpuConfig,
    scheduler: SchedulerKind,
    profile: &BenchmarkProfile,
    frames: u32,
) -> SequenceStats {
    GpuSimulator::new(cfg.clone(), scheduler).render_sequence(profile, frames)
}

/// Renders a benchmark sequence on a fresh GPU with an explicit mechanism axis
/// (Rendering Elimination and/or WaSP layered on top of `scheduler`).
pub fn simulate_sequence_mech(
    cfg: &GpuConfig,
    scheduler: SchedulerKind,
    mechanism: MechanismSpec,
    profile: &BenchmarkProfile,
    frames: u32,
) -> SequenceStats {
    GpuSimulator::with_mechanism(cfg.clone(), scheduler, mechanism).render_sequence(profile, frames)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbr_common::config::ScreenConfig;
    use tbr_workloads::suite;

    fn profile() -> BenchmarkProfile {
        suite().remove(0)
    }

    #[test]
    fn frame_stats_are_populated() {
        let cfg = GpuConfig::baseline(ScreenConfig::tiny());
        let s = simulate_sequence(&cfg, SchedulerKind::SingleZOrder, &profile(), 1);
        let f = &s.frames[0];
        assert!(f.geometry_cycles > 0);
        assert!(f.raster_cycles > 0);
        assert!(f.raster_fraction() > 0.5, "raster should dominate: {}", f.raster_fraction());
        assert!(f.texture_cache.accesses > 0);
        assert!(f.dram.total_accesses() > 0);
        assert!(f.instructions > 0);
        assert!(f.heatmap.total_dram_accesses() > 0);
    }

    #[test]
    fn later_frames_benefit_from_warm_caches() {
        let cfg = GpuConfig::baseline(ScreenConfig::tiny());
        let s = simulate_sequence(&cfg, SchedulerKind::SingleZOrder, &profile(), 3);
        let cold = s.frames[0].texture_cache.hit_ratio();
        let warm = s.frames[2].texture_cache.hit_ratio();
        assert!(warm >= cold - 0.05, "warm {warm} vs cold {cold}");
    }

    #[test]
    fn libra_consumes_feedback_without_losing_tiles() {
        let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
        let s = simulate_sequence(&cfg, SchedulerKind::Libra, &profile(), 3);
        // Same functional work every frame (same scene structure).
        for w in s.frames.windows(2) {
            let a = w[0].fragments as f64;
            let b = w[1].fragments as f64;
            assert!((a - b).abs() / a < 0.2, "fragment counts should be coherent");
        }
    }

    #[test]
    fn sequences_are_deterministic() {
        let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
        let a = simulate_sequence(&cfg, SchedulerKind::Libra, &profile(), 2);
        let b = simulate_sequence(&cfg, SchedulerKind::Libra, &profile(), 2);
        assert_eq!(a, b);
    }

    #[test]
    fn schedulers_do_equal_functional_work() {
        let screen = ScreenConfig::tiny();
        let base =
            simulate_sequence(&GpuConfig::baseline(screen), SchedulerKind::SingleZOrder, &profile(), 1);
        let libra =
            simulate_sequence(&GpuConfig::libra(screen, 2), SchedulerKind::Libra, &profile(), 1);
        assert_eq!(base.frames[0].fragments, libra.frames[0].fragments);
        assert_eq!(base.frames[0].primitives, libra.frames[0].primitives);
    }

    #[test]
    fn re_discards_every_tile_of_a_repeated_scene() {
        let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
        let gen = SceneGenerator::new(&profile(), &cfg.screen);
        let scene = gen.scene(0);
        let re = MechanismSpec::parse("re").unwrap();
        let mut sim = GpuSimulator::with_mechanism(cfg.clone(), SchedulerKind::Libra, re);
        let first = sim.render_frame(&scene);
        let second = sim.render_frame(&scene); // bit-identical inputs
        let counter = |name: &str, frame: &str| {
            sim.metrics().counter_value(name, &[("frame", frame)]).unwrap_or(0)
        };
        assert_eq!(counter("re_tiles_discarded", "0"), 0, "no cache on frame 0");
        let tiles = cfg.screen.num_tiles() as u64;
        assert_eq!(counter("re_tiles_checked", "1"), tiles);
        assert_eq!(counter("re_tiles_discarded", "1"), tiles, "identical frame");
        assert!(counter("re_signature_bytes", "1") > 0);
        assert_eq!(counter("re_false_negatives", "1"), 0);
        // The whole raster phase was eliminated; only geometry remains.
        assert_eq!(second.fragments, 0);
        assert!(second.total_cycles() < first.total_cycles());
    }

    #[test]
    fn re_oracle_renders_everything_and_sees_no_collisions() {
        let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
        let p = profile();
        let oracle = MechanismSpec::parse("re-oracle").unwrap();
        let mut sim = GpuSimulator::with_mechanism(cfg.clone(), SchedulerKind::Libra, oracle);
        let seq = sim.render_sequence(&p, 3);
        let base = simulate_sequence(&cfg, SchedulerKind::Libra, &p, 3);
        for (a, b) in seq.frames.iter().zip(&base.frames) {
            assert_eq!(a.fragments, b.fragments, "oracle must render every tile");
            assert_eq!(a.raster_cycles, b.raster_cycles);
        }
        for f in 0..3u32 {
            let label = f.to_string();
            assert_eq!(
                sim.metrics().counter_value("re_false_negatives", &[("frame", &label)]),
                Some(0),
                "hash collision on frame {f}"
            );
        }
    }

    #[test]
    fn mechanisms_compose_and_stay_deterministic() {
        let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
        let p = profile();
        let both = MechanismSpec::parse("re+wasp").unwrap();
        let a = simulate_sequence_mech(&cfg, SchedulerKind::Libra, both, &p, 2);
        let b = simulate_sequence_mech(&cfg, SchedulerKind::Libra, both, &p, 2);
        assert_eq!(a, b);
        assert!(a.total_cycles() > 0);
    }

    #[test]
    #[should_panic(expected = "invalid GPU configuration")]
    fn invalid_config_panics() {
        let mut cfg = GpuConfig::baseline(ScreenConfig::tiny());
        cfg.cores_per_ru = 0;
        let _ = GpuSimulator::new(cfg, SchedulerKind::SingleZOrder);
    }
}

/// Renders a sequence with an *oracle* temperature scheduler: each frame is first
/// profiled with a scout pass (on cloned GPU state, so nothing leaks into the real
/// timing), then scheduled from its **own** heatmap instead of the previous frame's.
///
/// This is the upper bound of LIBRA's frame-coherence prediction: the gap between
/// oracle and LIBRA measures how much the previous-frame prediction loses (ablation
/// for DESIGN.md §5; not buildable in hardware).
pub fn simulate_sequence_oracle(
    cfg: &GpuConfig,
    profile: &BenchmarkProfile,
    frames: u32,
    supertile_size: u32,
) -> SequenceStats {
    use libra::scheduler::temperature_plan;
    use tbr_workloads::SceneGenerator;

    cfg.validate().expect("invalid GPU configuration");
    let gen = SceneGenerator::new(profile, &cfg.screen);
    let mut hier = MemoryHierarchy::new(cfg.l2_cache, cfg.dram, cfg.dram_interval_cycles);
    hier.ideal = cfg.ideal_memory;
    let mut vertex_l1 = L1Cache::new(cfg.vertex_cache);
    let mut rus: Vec<RasterUnit> = (0..cfg.num_raster_units).map(|_| RasterUnit::new(cfg)).collect();
    let mut seq = SequenceStats::default();

    for frame_no in 0..frames {
        let scene = gen.scene(frame_no);
        let geo = run_geometry_phase(cfg, &mut vertex_l1, &mut hier, &scene);
        let vertex_cache = vertex_l1.end_frame();
        let (geo_l2, geo_dram) = hier.end_frame();

        // Scout pass on cloned state: profile THIS frame without disturbing timing
        // or cache contents of the real run.
        let heatmap = {
            let mut scout_hier = hier.clone();
            let mut scout_rus = rus.clone();
            let mut scout_plan = libra::scheduler::ZOrderScheduler
                .plan_frame(&cfg.screen, None);
            let scout = crate::raster_phase::run_raster_phase(
                cfg,
                &mut scout_rus,
                &mut scout_hier,
                &mut scout_plan,
                &geo.tris,
                &geo.bins,
                MechanismSpec::default(),
            );
            scout.heatmap
        };

        // Real pass with the oracle plan.
        let mut plan = temperature_plan(&cfg.screen, &heatmap, supertile_size);
        let geometry_cycles = geo.cycles.max(plan.ranking_cycles);
        let raster = run_raster_phase(
            cfg,
            &mut rus,
            &mut hier,
            &mut plan,
            &geo.tris,
            &geo.bins,
            MechanismSpec::default(),
        );

        let mut texture_cache = tbr_common::stats::CacheStats::default();
        let mut tile_cache = tbr_common::stats::CacheStats::default();
        for ru in &mut rus {
            let (tex, tile) = ru.end_frame();
            texture_cache.merge(&tex);
            tile_cache.merge(&tile);
        }
        let (mut l2_cache, mut dram) = hier.end_frame();
        l2_cache.merge(&geo_l2);
        dram.merge(&geo_dram);

        seq.frames.push(FrameStats {
            frame: FrameId(frame_no),
            geometry_cycles,
            raster_cycles: raster.raster_cycles,
            vertex_cache,
            tile_cache,
            texture_cache,
            l2_cache,
            dram,
            heatmap: raster.heatmap,
            vertices: geo.counts.vertices_shaded,
            primitives: geo.counts.prims_out,
            fragments: raster.fragments,
            warps: raster.warps,
            instructions: raster.instructions,
            texture_requests: raster.tex_requests,
            texture_latency_sum: raster.tex_latency_sum,
            texture_fill_lines: raster.fill_lines,
            texture_unique_lines: raster.unique_lines,
            micro_events: geo.events + raster.events,
        });
    }
    seq
}

#[cfg(test)]
mod oracle_tests {
    use super::*;
    use tbr_common::config::ScreenConfig;
    use tbr_workloads::suite;

    #[test]
    fn oracle_runs_and_matches_functional_work() {
        let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
        let p = suite().remove(4); // CCS
        let oracle = simulate_sequence_oracle(&cfg, &p, 2, 2);
        let libra = simulate_sequence(&cfg, SchedulerKind::Libra, &p, 2);
        assert_eq!(oracle.frames.len(), 2);
        for (a, b) in oracle.frames.iter().zip(&libra.frames) {
            assert_eq!(a.fragments, b.fragments, "same functional work");
            assert_eq!(a.primitives, b.primitives);
        }
        assert!(oracle.total_cycles() > 0);
    }

    #[test]
    fn oracle_is_deterministic() {
        let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
        let p = suite().remove(0);
        let a = simulate_sequence_oracle(&cfg, &p, 2, 2);
        let b = simulate_sequence_oracle(&cfg, &p, 2, 2);
        assert_eq!(a, b);
    }
}
