//! `libra-wire-v1` — the campaign service's message vocabulary.
//!
//! The campaign service speaks newline-delimited JSON frames over two
//! transports: TCP between `libra-sim submit` clients and the `libra-sim
//! serve` coordinator, and stdio pipes between the coordinator and its
//! `libra-sim worker` child processes. [`tbr_common::wire`] owns the framing
//! (atomic writes, length-capped reads); this module owns what a frame *says*.
//!
//! Every frame is one JSON object with a mandatory `"v": "libra-wire-v1"`
//! version stamp and a `"type"` tag. Decoding rejects unknown versions and
//! unknown tags outright — a v2 endpoint can therefore change anything as long
//! as it bumps the version string, and a v1 endpoint will fail loudly rather
//! than mis-parse. The same conventions as the checkpoint schema apply on top:
//!
//! * 64-bit values (seeds, campaign fingerprints) travel as `"0x…"` hex
//!   **strings**, never JSON numbers, because the in-repo parser holds numbers
//!   as `f64` and would silently round above 2⁵³.
//! * Job results embed the exact checkpoint [`Record`] object, so a wire
//!   result and a checkpoint line are interchangeable: the coordinator adopts
//!   both through [`Campaign::adopt_record`], and crash recovery replays a
//!   dead worker's checkpointed records with no translation step.
//!
//! A [`JobSpec`] names a campaign *constructively* (seed, scheduler, screen,
//! frame count, suite truncation) rather than shipping the job list itself:
//! coordinator and client each rebuild the [`Campaign`] locally and compare
//! [`Campaign::fingerprint`]s, so a version skew that changes the sweep is
//! caught at submit time instead of surfacing as a corrupt report.

use libra::scheduler::SchedulerKind;
use tbr_common::config::{GpuConfig, ScreenConfig};
use tbr_common::hostprof::HostMeta;
use tbr_common::json::{self, escape_into, Value};
use tbr_common::mechanism::MechanismSpec;
use tbr_workloads::suite;

use crate::campaign::Campaign;
use crate::checkpoint::Record;

/// Protocol version stamped into (and demanded of) every frame.
pub const WIRE_VERSION: &str = "libra-wire-v1";

/// Parses the CLI/wire scheduler name shared by `libra-sim` and [`JobSpec`].
pub fn parse_scheduler(s: &str) -> Result<SchedulerKind, String> {
    Ok(match s {
        "z" | "zorder" => SchedulerKind::SingleZOrder,
        "scanline" => SchedulerKind::Scanline,
        "hilbert" => SchedulerKind::Hilbert,
        "static2" => SchedulerKind::StaticSupertile(2),
        "static4" => SchedulerKind::StaticSupertile(4),
        "static8" => SchedulerKind::StaticSupertile(8),
        "static16" => SchedulerKind::StaticSupertile(16),
        "libra" => SchedulerKind::Libra,
        other => return Err(format!("unknown scheduler `{other}`")),
    })
}

/// A constructive description of one campaign sweep: everything needed to
/// rebuild the identical [`Campaign`] on any endpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Campaign seed (job seeds are position-derived from it).
    pub seed: u64,
    /// Scheduler name in [`parse_scheduler`] vocabulary.
    pub scheduler: String,
    /// Mechanism axis in [`MechanismSpec::parse`] vocabulary (`none`, `re`,
    /// `wasp`, `re-oracle`, `+` combinations). Backward-compat rule: the wire
    /// field is omitted when `none`, and a payload without the field decodes
    /// to `none` — pre-mechanism endpoints and payloads stay interoperable.
    pub mechanism: String,
    /// Frames rendered per job.
    pub frames: u32,
    /// Raster Units in the simulated GPU.
    pub rus: usize,
    /// Shader cores per Raster Unit.
    pub cores: usize,
    /// Screen preset: `tiny`, `quarter` or `fhd`.
    pub screen: String,
    /// Model a perfect memory system (isolates scheduling effects).
    pub ideal_memory: bool,
    /// Truncate the workload suite to its first N profiles (`None` = all 32).
    pub take: Option<usize>,
}

impl Default for JobSpec {
    fn default() -> Self {
        Self {
            seed: 0,
            scheduler: "libra".into(),
            mechanism: "none".into(),
            frames: 6,
            rus: 2,
            cores: 4,
            screen: "quarter".into(),
            ideal_memory: false,
            take: None,
        }
    }
}

impl JobSpec {
    /// Rebuilds the GPU configuration and [`Campaign`] this spec names.
    ///
    /// Mirrors `libra-sim campaign` exactly (LIBRA preset, `cores_per_ru` and
    /// `ideal_memory` overrides, one job per workload under one scheduler) so
    /// a sharded service run and a single-process sweep construct
    /// fingerprint-identical campaigns.
    pub fn to_campaign(&self) -> Result<(GpuConfig, Campaign), String> {
        let sched = parse_scheduler(&self.scheduler)?;
        let mech = MechanismSpec::parse(&self.mechanism).map_err(|e| format!("job spec: {e}"))?;
        let screen = match self.screen.as_str() {
            "tiny" => ScreenConfig::tiny(),
            "quarter" => ScreenConfig::quarter_fhd(),
            "fhd" => ScreenConfig::fhd(),
            other => return Err(format!("unknown screen preset `{other}` (tiny|quarter|fhd)")),
        };
        let mut cfg = GpuConfig::libra(screen, self.rus);
        cfg.cores_per_ru = self.cores;
        cfg.ideal_memory = self.ideal_memory;
        let mut profiles = suite();
        if let Some(n) = self.take {
            if n == 0 {
                return Err("job spec: `take` must be >= 1".into());
            }
            profiles.truncate(n);
        }
        let campaign = Campaign::grid_mech(self.seed, &cfg, &[sched], mech, &profiles, self.frames);
        Ok((cfg, campaign))
    }

    fn json_object(&self) -> String {
        let mut out = format!(
            "{{\"seed\": \"{:#x}\", \"scheduler\": \"{}\", \"frames\": {}, \"rus\": {}, \
             \"cores\": {}, \"screen\": \"{}\", \"ideal_memory\": {}",
            self.seed, self.scheduler, self.frames, self.rus, self.cores, self.screen,
            self.ideal_memory
        );
        if let Some(n) = self.take {
            out.push_str(&format!(", \"take\": {n}"));
        }
        // Omitted when default so pre-mechanism endpoints keep decoding (and
        // fingerprint-checking) default payloads byte-identically.
        if self.mechanism != "none" {
            out.push_str(&format!(", \"mechanism\": {}", quoted(&self.mechanism)));
        }
        out.push('}');
        out
    }

    fn from_value(v: &Value, what: &str) -> Result<Self, String> {
        let take = match v.get("take") {
            None => None,
            Some(t) => Some(
                t.as_u64()
                    .ok_or_else(|| format!("{what}.take: expected an exact integer"))?
                    as usize,
            ),
        };
        let mechanism = match v.get("mechanism") {
            None => "none".to_string(), // pre-mechanism payload: default axis
            Some(m) => m
                .as_str()
                .ok_or_else(|| format!("{what}.mechanism: expected a string"))?
                .to_string(),
        };
        Ok(Self {
            seed: field_hex(v, "seed", what)?,
            scheduler: field_str(v, "scheduler", what)?.to_string(),
            mechanism,
            frames: field_u64(v, "frames", what)? as u32,
            rus: field_u64(v, "rus", what)? as usize,
            cores: field_u64(v, "cores", what)? as usize,
            screen: field_str(v, "screen", what)?.to_string(),
            ideal_memory: field(v, "ideal_memory", what)?
                .as_bool()
                .ok_or_else(|| format!("{what}.ideal_memory: expected a boolean"))?,
            take,
        })
    }
}

/// One `libra-wire-v1` frame, in either direction, on either transport.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// First frame each endpoint sends: who it is, on which host.
    Hello {
        /// `"coordinator"`, `"worker"` or `"client"`.
        role: String,
        /// Host stamp of the sender (feeds multi-host attribution).
        host: HostMeta,
    },
    /// Client → coordinator: run this sweep.
    Submit {
        /// The campaign to run.
        spec: JobSpec,
    },
    /// Coordinator → client: sweep accepted, identity confirmed.
    Accepted {
        /// Number of jobs in the rebuilt campaign.
        jobs: usize,
        /// [`Campaign::fingerprint`] of the rebuilt campaign.
        fingerprint: u64,
    },
    /// Coordinator → client: one job finished somewhere in the shard pool.
    Progress {
        /// Campaign position of the finished job.
        job: usize,
        /// Jobs finished so far (including this one).
        done: usize,
        /// Total jobs in the sweep.
        total: usize,
        /// Workload abbreviation of the finished job.
        abbrev: String,
        /// Scheduler name of the finished job.
        scheduler: String,
        /// Whether the job succeeded (`false`: failed or timed out).
        ok: bool,
    },
    /// Coordinator → client: the sweep's final, deterministic report.
    Report {
        /// Fingerprint again, so a client can re-check against [`Accepted`](Message::Accepted).
        fingerprint: u64,
        /// Human-readable one-line summary.
        summary: String,
        /// Worker processes that died and were respawned during the sweep.
        crashes: usize,
        /// One stamp per contributing worker, in worker order.
        hosts: Vec<HostMeta>,
        /// The full `libra-metrics-v1` report — byte-identical to
        /// `libra-sim campaign --report-json` for the same spec.
        report_json: String,
    },
    /// Either direction: structured failure; the connection closes after it.
    Error {
        /// What went wrong.
        message: String,
    },
    /// Coordinator → worker: run this campaign position.
    Assign {
        /// Campaign position to run.
        job: usize,
        /// The sweep the position indexes into (sent with every assignment so
        /// workers stay stateless between jobs).
        spec: JobSpec,
    },
    /// Worker → coordinator: a finished job, as a checkpoint record.
    JobResult {
        /// The result in checkpoint-record form (adopted + validated by the
        /// coordinator through `Campaign::adopt_record`).
        record: Record,
        /// Stamp of the worker that ran it.
        host: HostMeta,
    },
    /// Coordinator → worker: drain and exit cleanly.
    Shutdown,
}

fn field<'a>(v: &'a Value, key: &str, what: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("{what}: missing field `{key}`"))
}

fn field_str<'a>(v: &'a Value, key: &str, what: &str) -> Result<&'a str, String> {
    field(v, key, what)?.as_str().ok_or_else(|| format!("{what}.{key}: expected a string"))
}

fn field_u64(v: &Value, key: &str, what: &str) -> Result<u64, String> {
    field(v, key, what)?
        .as_u64()
        .ok_or_else(|| format!("{what}.{key}: expected an exact integer"))
}

fn field_hex(v: &Value, key: &str, what: &str) -> Result<u64, String> {
    let s = field_str(v, key, what)?;
    let digits = s
        .strip_prefix("0x")
        .ok_or_else(|| format!("{what}.{key}: expected a 0x-prefixed hex string, got `{s}`"))?;
    u64::from_str_radix(digits, 16).map_err(|_| format!("{what}.{key}: invalid hex value `{s}`"))
}

fn quoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

fn hosts_array(hosts: &[HostMeta]) -> String {
    let items: Vec<String> = hosts.iter().map(HostMeta::json_object).collect();
    format!("[{}]", items.join(", "))
}

impl Message {
    /// The frame's `"type"` tag.
    pub fn tag(&self) -> &'static str {
        match self {
            Message::Hello { .. } => "hello",
            Message::Submit { .. } => "submit",
            Message::Accepted { .. } => "accepted",
            Message::Progress { .. } => "progress",
            Message::Report { .. } => "report",
            Message::Error { .. } => "error",
            Message::Assign { .. } => "assign",
            Message::JobResult { .. } => "result",
            Message::Shutdown => "shutdown",
        }
    }

    /// Encodes the message as one JSON line (no trailing newline — framing is
    /// [`tbr_common::wire`]'s job).
    pub fn encode(&self) -> String {
        let mut out = format!("{{\"v\": \"{WIRE_VERSION}\", \"type\": \"{}\"", self.tag());
        match self {
            Message::Hello { role, host } => {
                out.push_str(&format!(
                    ", \"role\": {}, \"host\": {}",
                    quoted(role),
                    host.json_object()
                ));
            }
            Message::Submit { spec } => {
                out.push_str(&format!(", \"spec\": {}", spec.json_object()));
            }
            Message::Accepted { jobs, fingerprint } => {
                out.push_str(&format!(
                    ", \"jobs\": {jobs}, \"fingerprint\": \"{fingerprint:#x}\""
                ));
            }
            Message::Progress { job, done, total, abbrev, scheduler, ok } => {
                out.push_str(&format!(
                    ", \"job\": {job}, \"done\": {done}, \"total\": {total}, \
                     \"abbrev\": {}, \"scheduler\": {}, \"ok\": {ok}",
                    quoted(abbrev),
                    quoted(scheduler)
                ));
            }
            Message::Report { fingerprint, summary, crashes, hosts, report_json } => {
                out.push_str(&format!(
                    ", \"fingerprint\": \"{fingerprint:#x}\", \"summary\": {}, \
                     \"crashes\": {crashes}, \"hosts\": {}, \"report_json\": {}",
                    quoted(summary),
                    hosts_array(hosts),
                    quoted(report_json)
                ));
            }
            Message::Error { message } => {
                out.push_str(&format!(", \"message\": {}", quoted(message)));
            }
            Message::Assign { job, spec } => {
                out.push_str(&format!(", \"job\": {job}, \"spec\": {}", spec.json_object()));
            }
            Message::JobResult { record, host } => {
                out.push_str(&format!(
                    ", \"record\": {}, \"host\": {}",
                    record.to_json(),
                    host.json_object()
                ));
            }
            Message::Shutdown => {}
        }
        out.push('}');
        out
    }

    /// Decodes one frame. Rejects malformed JSON, a missing or foreign
    /// version stamp, and unknown `"type"` tags.
    pub fn decode(line: &str) -> Result<Message, String> {
        let v = json::parse(line).map_err(|e| format!("wire frame: {e}"))?;
        let version = field_str(&v, "v", "wire frame")?;
        if version != WIRE_VERSION {
            return Err(format!(
                "wire frame: version `{version}` is not `{WIRE_VERSION}` \
                 (mixed endpoint builds?)"
            ));
        }
        let tag = field_str(&v, "type", "wire frame")?;
        let what = format!("{tag} frame");
        let what = what.as_str();
        Ok(match tag {
            "hello" => Message::Hello {
                role: field_str(&v, "role", what)?.to_string(),
                host: HostMeta::from_value(field(&v, "host", what)?, what)?,
            },
            "submit" => Message::Submit {
                spec: JobSpec::from_value(field(&v, "spec", what)?, what)?,
            },
            "accepted" => Message::Accepted {
                jobs: field_u64(&v, "jobs", what)? as usize,
                fingerprint: field_hex(&v, "fingerprint", what)?,
            },
            "progress" => Message::Progress {
                job: field_u64(&v, "job", what)? as usize,
                done: field_u64(&v, "done", what)? as usize,
                total: field_u64(&v, "total", what)? as usize,
                abbrev: field_str(&v, "abbrev", what)?.to_string(),
                scheduler: field_str(&v, "scheduler", what)?.to_string(),
                ok: field(&v, "ok", what)?
                    .as_bool()
                    .ok_or_else(|| format!("{what}.ok: expected a boolean"))?,
            },
            "report" => Message::Report {
                fingerprint: field_hex(&v, "fingerprint", what)?,
                summary: field_str(&v, "summary", what)?.to_string(),
                crashes: field_u64(&v, "crashes", what)? as usize,
                hosts: {
                    let arr = field(&v, "hosts", what)?
                        .as_array()
                        .ok_or_else(|| format!("{what}.hosts: expected an array"))?;
                    arr.iter()
                        .enumerate()
                        .map(|(i, h)| HostMeta::from_value(h, &format!("{what}.hosts[{i}]")))
                        .collect::<Result<Vec<_>, _>>()?
                },
                report_json: field_str(&v, "report_json", what)?.to_string(),
            },
            "error" => Message::Error {
                message: field_str(&v, "message", what)?.to_string(),
            },
            "assign" => Message::Assign {
                job: field_u64(&v, "job", what)? as usize,
                spec: JobSpec::from_value(field(&v, "spec", what)?, what)?,
            },
            "result" => Message::JobResult {
                record: Record::from_value(field(&v, "record", what)?, what)?,
                host: HostMeta::from_value(field(&v, "host", what)?, what)?,
            },
            "shutdown" => Message::Shutdown,
            other => {
                return Err(format!(
                    "wire frame: unknown type `{other}` (mixed endpoint builds?)"
                ))
            }
        })
    }
}
