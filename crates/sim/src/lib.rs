//! # tbr-sim — the cycle-level TBR GPU simulator
//!
//! Integrates every substrate of the workspace into the full GPU of Fig 3:
//!
//! * [`geometry_phase`] — the timed Geometry Pipeline + Tiling Engine: vertex fetch
//!   through the vertex cache, vertex shading on the unified cores, primitive
//!   assembly/cull/clip, and Parameter-Buffer writes through the L2;
//! * [`raster_phase`] — the event-driven Raster Pipeline: N Raster Units pulling
//!   tiles from the scheduler's [`libra::scheduler::FramePlan`], with warp-granular
//!   interleaving across RUs so shared L2/DRAM contention is causally ordered;
//! * [`gpu`] — [`GpuSimulator`]: the frame loop with LIBRA's feedback path (profile
//!   frame *n*, schedule frame *n + 1*), plus the orthogonal mechanism axes
//!   ([`tbr_common::mechanism::MechanismSpec`]): Rendering Elimination's per-tile
//!   signature cache and WaSP's spearhead warp scheduling;
//! * [`campaign`] — the deterministic, fault-tolerant parallel campaign driver:
//!   independent (workload × scheduler × config) sweep points fanned across
//!   `std::thread` workers via a work-stealing queue, bit-identical to the serial
//!   order, with per-job panic isolation, a watchdog cycle budget, and
//!   [`checkpoint`]-based crash salvage/resume (faults injectable via [`fault`]);
//! * [`service`] + [`wire`] — the campaign *service*: a `libra-sim serve` TCP
//!   coordinator sharding sweeps across `libra-sim worker` child processes over
//!   the `libra-wire-v1` line-JSON protocol, byte-identical to a single-process
//!   campaign and crash-tolerant through the same checkpoint/adopt machinery.
//!
//! The simulator is deterministic: the same configuration, scheduler and workload
//! always produce identical cycle counts and statistics.
//!
//! ```
//! use tbr_common::config::{GpuConfig, ScreenConfig};
//! use tbr_sim::{simulate_sequence, SchedulerKind};
//! use tbr_workloads::suite;
//!
//! // Two frames of a small screen finish quickly and deterministically.
//! let screen = ScreenConfig::tiny();
//! let profile = suite().remove(0);
//! let cfg = GpuConfig::libra(screen, 2);
//! let a = simulate_sequence(&cfg, SchedulerKind::Libra, &profile, 2);
//! let b = simulate_sequence(&cfg, SchedulerKind::Libra, &profile, 2);
//! assert_eq!(a.total_cycles(), b.total_cycles());
//! ```

#![warn(missing_docs)]

pub mod attribution;
pub mod campaign;
pub mod checkpoint;
pub mod event_loop;
pub mod fault;
pub mod geometry_phase;
pub mod gpu;
pub mod imr;
pub mod raster_phase;
pub mod report;
pub mod service;
pub mod throughput;
pub mod wire;

pub use campaign::{
    Campaign, CampaignJob, CampaignProfile, CampaignResult, CampaignRun, CampaignSummary,
    JobProfile, JobSuccess, RunOptions, WorkerProfile,
};
pub use checkpoint::{Checkpoint, CheckpointFormat, CheckpointWriter, Record, RecordOutcome};
pub use service::{
    run_sharded, run_worker, submit, Coordinator, ServeOptions, ShardedRun, SubmitOutcome,
};
pub use wire::{JobSpec, Message, WIRE_VERSION};
pub use fault::{FaultKind, FaultSpec};
pub use event_loop::EventLoopMode;
pub use gpu::{
    simulate_frame, simulate_sequence, simulate_sequence_mech, simulate_sequence_oracle,
    GpuSimulator,
};
pub use imr::simulate_sequence_imr;
pub use libra::scheduler::SchedulerKind;
