//! The campaign service: a long-running coordinator that shards sweeps across
//! `libra-sim worker` child processes.
//!
//! `libra-sim serve` binds a [`Coordinator`] on a TCP address and accepts
//! `libra-wire-v1` connections (see [`crate::wire`]). Each `submit` frame names
//! a campaign constructively (a [`JobSpec`]); the coordinator rebuilds the
//! [`Campaign`] locally, answers with its job count and fingerprint, then runs
//! the sweep through [`run_sharded`]: a pool of spawned worker *processes*,
//! each fed one campaign position at a time over stdio, with results flowing
//! back as checkpoint [`Record`]s.
//!
//! # Determinism
//!
//! Sharding changes *where* a job runs, never *what* it computes: job seeds
//! are position-derived ([`Campaign::effective_seed`]), every worker rebuilds
//! the identical campaign from the spec, and results are slotted back by
//! campaign position. The aggregated report
//! ([`crate::report::campaign_metrics_json`]) is therefore byte-identical to a
//! single-process `libra-sim campaign` of the same spec — regardless of worker
//! count, dispatch order, or mid-sweep worker crashes. The conformance suite
//! (`tests/service_integration.rs`) and CI gate 13 `cmp` exactly that.
//!
//! # Fault tolerance
//!
//! A worker that dies mid-job surfaces as EOF on its stdout pipe. The
//! coordinator re-queues the in-flight position at the *front* of the queue
//! (so recovery work is not starved behind the backlog), respawns the worker,
//! and counts the crash. Results are validated on adoption through
//! [`Campaign::adopt_record`] — the same re-binding the `--resume` path uses
//! for checkpoint records — so a confused worker cannot slot a result from a
//! different sweep. When [`ServeOptions::checkpoint_to`] is set, every adopted
//! result is also appended to an ordinary campaign checkpoint, making a
//! killed *coordinator* resumable by `libra-sim campaign --resume`.

use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use tbr_common::hostprof::{HostMeta, HostTotals};
use tbr_common::wire::{write_frame, FrameReader};

use crate::campaign::{
    Campaign, CampaignProfile, CampaignResult, JobProfile, RunOptions, WorkerProfile,
};
use crate::checkpoint::{CheckpointFormat, CheckpointHeader, CheckpointWriter, Record};
use crate::report;
use crate::wire::{JobSpec, Message};

/// Environment variable overriding every service read timeout, in seconds.
/// The test suite sets small sweeps but CI machines can be slow; raising this
/// beats sprinkling per-call timeouts.
pub const TIMEOUT_ENV: &str = "LIBRA_TEST_TIMEOUT_SECS";

/// The service's read timeout: [`TIMEOUT_ENV`] if set and parseable, else
/// 120 s. Applied via `set_read_timeout` on every TCP socket so a hung peer
/// can never wedge an endpoint forever (pipes instead surface worker death
/// as EOF).
pub fn default_timeout() -> Duration {
    let secs = std::env::var(TIMEOUT_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&s| s > 0)
        .unwrap_or(120);
    Duration::from_secs(secs)
}

/// Configuration of a [`Coordinator`] / [`run_sharded`] pool.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker processes to spawn per submitted sweep.
    pub workers: usize,
    /// Command line that launches one worker (defaults to
    /// `[current_exe, "worker"]`). Tests point this at
    /// `CARGO_BIN_EXE_libra-sim`.
    pub worker_cmd: Vec<String>,
    /// Serve exactly one connection, then return (tests and CI smoke).
    pub once: bool,
    /// Fault injection: kill the worker that gets assigned this campaign
    /// position, once, to exercise crash recovery.
    pub kill_job: Option<usize>,
    /// Append every adopted result to this campaign checkpoint
    /// (`libra-sim campaign --resume` compatible).
    pub checkpoint_to: Option<String>,
    /// TCP read timeout for client connections.
    pub read_timeout: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            workers: 2,
            worker_cmd: default_worker_cmd(),
            once: false,
            kill_job: None,
            checkpoint_to: None,
            read_timeout: default_timeout(),
        }
    }
}

/// The default worker launch command: this very binary, `worker` subcommand.
/// Falls back to a bare `libra-sim` lookup on `PATH` if the executable path
/// is unavailable.
pub fn default_worker_cmd() -> Vec<String> {
    let exe = std::env::current_exe()
        .ok()
        .and_then(|p| p.to_str().map(str::to_string))
        .unwrap_or_else(|| "libra-sim".to_string());
    vec![exe, "worker".to_string()]
}

// ---------------------------------------------------------------------------
// Worker process handle
// ---------------------------------------------------------------------------

/// One spawned worker process: stdio pipes plus the host stamp from its hello.
struct WorkerProc {
    child: Child,
    stdin: Option<ChildStdin>,
    reader: FrameReader<BufReader<ChildStdout>>,
    host: HostMeta,
}

impl WorkerProc {
    /// Spawns `cmd` and performs the hello handshake (worker speaks first on
    /// stdio, so a wrong binary fails here, not mid-sweep).
    fn spawn(cmd: &[String]) -> Result<Self, String> {
        let (exe, args) = cmd.split_first().ok_or("service: empty worker command")?;
        let mut child = Command::new(exe)
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| format!("service: spawning worker `{exe}`: {e}"))?;
        let stdin = child.stdin.take();
        let stdout = child.stdout.take().ok_or("service: worker stdout unavailable")?;
        let mut reader = FrameReader::new(BufReader::new(stdout));
        let hello = reader
            .read_frame("worker")?
            .ok_or("service: worker exited before its hello")?;
        let host = match Message::decode(&hello)? {
            Message::Hello { host, .. } => host,
            other => return Err(format!("service: worker sent {} before hello", other.tag())),
        };
        Ok(Self { child, stdin, reader, host })
    }

    fn send(&mut self, msg: &Message) -> Result<(), String> {
        let stdin = self.stdin.as_mut().ok_or("service: worker stdin closed")?;
        write_frame(stdin, &msg.encode(), "worker")
    }

    fn recv(&mut self) -> Result<Message, String> {
        let frame = self
            .reader
            .read_frame("worker")?
            .ok_or("service: worker closed its stdout mid-sweep")?;
        Message::decode(&frame)
    }

    /// Asks the worker to exit and reaps it (pipe close is the backstop).
    fn shutdown(mut self) {
        let _ = self.send(&Message::Shutdown);
        drop(self.stdin.take());
        let _ = self.child.wait();
    }
}

impl Drop for WorkerProc {
    fn drop(&mut self) {
        // Reap unconditionally so an error path never leaks a child process.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

// ---------------------------------------------------------------------------
// Sharded execution
// ---------------------------------------------------------------------------

/// Outcome of one sharded sweep.
#[derive(Debug)]
pub struct ShardedRun {
    /// Results in campaign order (same invariant as `Campaign::run`).
    pub results: Vec<CampaignResult>,
    /// Host-side profile: one [`WorkerProfile`] per worker *process*, one
    /// [`JobProfile`] per job, and one [`HostMeta`] stamp per worker in
    /// `host.hosts` (worker order) for multi-host attribution.
    pub profile: CampaignProfile,
    /// Worker processes that died mid-job and were respawned.
    pub crashes: usize,
}

/// Runs `campaign` across [`ServeOptions::workers`] spawned worker processes
/// and returns results in campaign order.
///
/// `progress` is invoked (serialised under a lock) with one
/// [`Message::Progress`] per finished job, in completion order — completion
/// order is nondeterministic, the slotted results are not.
pub fn run_sharded(
    campaign: &Campaign,
    spec: &JobSpec,
    opts: &ServeOptions,
    progress: &mut (dyn FnMut(&Message) + Send),
) -> Result<ShardedRun, String> {
    let total = campaign.len();
    let workers = opts.workers.max(1).min(total.max(1));
    let t0 = Instant::now();

    let ckpt = match &opts.checkpoint_to {
        Some(path) => Some(CheckpointWriter::create(
            path,
            CheckpointHeader {
                seed: campaign.seed,
                jobs: total,
                fingerprint: campaign.fingerprint(),
            },
            CheckpointFormat::default(),
        )?),
        None => None,
    };

    let queue: Mutex<VecDeque<usize>> = Mutex::new((0..total).collect());
    let slots: Mutex<Vec<Option<CampaignResult>>> = Mutex::new(vec![None; total]);
    let job_profiles: Mutex<Vec<Option<JobProfile>>> = Mutex::new(vec![None; total]);
    let hosts: Mutex<Vec<Option<HostMeta>>> = Mutex::new(vec![None; workers]);
    let done = AtomicUsize::new(0);
    let crashes = AtomicUsize::new(0);
    let killed = AtomicBool::new(false);
    let tallies: Mutex<Vec<WorkerTally>> = Mutex::new(Vec::new());
    let progress = Mutex::new(progress);
    // A worker that keeps dying must not loop forever: allow every job its
    // re-run plus a little slack per worker, then give up structurally.
    let crash_budget = total + workers * 2;

    let worker_errors: Vec<Result<(), String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let queue = &queue;
                let slots = &slots;
                let job_profiles = &job_profiles;
                let hosts = &hosts;
                let done = &done;
                let crashes = &crashes;
                let killed = &killed;
                let tallies = &tallies;
                let progress = &progress;
                let ckpt = ckpt.as_ref();
                scope.spawn(move || -> Result<(), String> {
                    let mut proc = WorkerProc::spawn(&opts.worker_cmd)?;
                    hosts.lock().unwrap()[w] = Some(proc.host.clone());
                    let mut jobs_run = 0usize;
                    let mut busy = 0.0f64;
                    loop {
                        let Some(job) = queue.lock().unwrap().pop_front() else {
                            break;
                        };
                        let t_job = Instant::now();
                        proc.send(&Message::Assign { job, spec: spec.clone() })?;
                        if opts.kill_job == Some(job)
                            && !killed.swap(true, Ordering::SeqCst)
                        {
                            // Fault injection: murder the worker mid-job. The
                            // recv below sees EOF and takes the recovery path.
                            let _ = proc.child.kill();
                        }
                        match proc.recv() {
                            Ok(Message::JobResult { record, host: _ }) => {
                                let result = campaign.adopt_record(&record)?;
                                if result.job() != job {
                                    return Err(format!(
                                        "service: worker answered job {} for assignment {job}",
                                        result.job()
                                    ));
                                }
                                if let Some(ckpt) = ckpt {
                                    ckpt.append(&result)?;
                                }
                                let n = done.fetch_add(1, Ordering::SeqCst) + 1;
                                let msg = Message::Progress {
                                    job,
                                    done: n,
                                    total,
                                    abbrev: result.abbrev().to_string(),
                                    scheduler: result.scheduler().to_string(),
                                    ok: result.is_success(),
                                };
                                jobs_run += 1;
                                busy += t_job.elapsed().as_secs_f64();
                                job_profiles.lock().unwrap()[job] = Some(JobProfile {
                                    job,
                                    abbrev: campaign.jobs()[job].profile.abbrev,
                                    scheduler: campaign.jobs()[job].scheduler.build().name(),
                                    worker: w,
                                    secs: t_job.elapsed().as_secs_f64(),
                                });
                                slots.lock().unwrap()[job] = Some(result);
                                (progress.lock().unwrap())(&msg);
                            }
                            Ok(Message::Error { message }) => {
                                return Err(format!("service: worker error: {message}"));
                            }
                            Ok(other) => {
                                return Err(format!(
                                    "service: worker sent unexpected {} frame",
                                    other.tag()
                                ));
                            }
                            Err(e) => {
                                // Worker died (or spoke garbage) mid-job:
                                // requeue the position at the front so the
                                // respawned worker finishes it first, then
                                // respawn. The result is bit-identical —
                                // the job seed derives from the position.
                                let n = crashes.fetch_add(1, Ordering::SeqCst) + 1;
                                if n > crash_budget {
                                    return Err(format!(
                                        "service: {n} worker crashes exceed the budget of \
                                         {crash_budget} (last: {e})"
                                    ));
                                }
                                queue.lock().unwrap().push_front(job);
                                proc = WorkerProc::spawn(&opts.worker_cmd)?;
                                hosts.lock().unwrap()[w] = Some(proc.host.clone());
                            }
                        }
                    }
                    proc.shutdown();
                    tallies
                        .lock()
                        .unwrap()
                        .push(WorkerTally { worker: w, jobs_run, busy_secs: busy });
                    Ok(())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker thread panicked")).collect()
    });

    for r in &worker_errors {
        if let Err(e) = r {
            return Err(e.clone());
        }
    }

    let results: Vec<CampaignResult> = slots
        .into_inner()
        .unwrap()
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.ok_or_else(|| format!("service: job {i} was never completed")))
        .collect::<Result<_, _>>()?;

    let mut worker_profiles: Vec<WorkerProfile> = (0..workers)
        .map(|w| WorkerProfile { worker: w, jobs_run: 0, steals: 0, busy_secs: 0.0 })
        .collect();
    for tally in tallies.into_inner().unwrap() {
        if let Some(p) = worker_profiles.get_mut(tally.worker) {
            p.jobs_run = tally.jobs_run;
            p.busy_secs = tally.busy_secs;
        }
    }

    let profile = CampaignProfile {
        threads: workers,
        wall_secs: t0.elapsed().as_secs_f64(),
        workers: worker_profiles,
        jobs: job_profiles
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|j| j.expect("every completed job was profiled"))
            .collect(),
        host: Some(HostTotals {
            hosts: hosts
                .into_inner()
                .unwrap()
                .into_iter()
                .map(|h| h.expect("every worker slot hello'd"))
                .collect(),
            ..Default::default()
        }),
    };

    Ok(ShardedRun { results, profile, crashes: crashes.into_inner() })
}

/// Per-worker wall-clock tally, carried out of the scoped threads.
struct WorkerTally {
    worker: usize,
    jobs_run: usize,
    busy_secs: f64,
}

// ---------------------------------------------------------------------------
// Coordinator (TCP server)
// ---------------------------------------------------------------------------

/// The `libra-sim serve` TCP coordinator.
#[derive(Debug)]
pub struct Coordinator {
    listener: TcpListener,
    opts: ServeOptions,
}

impl Coordinator {
    /// Binds on `addr`. Bind `127.0.0.1:0` and read back
    /// [`local_addr`](Coordinator::local_addr) to get a collision-free
    /// ephemeral port — the convention every test and CI gate uses.
    pub fn bind(addr: &str, opts: ServeOptions) -> Result<Self, String> {
        let listener =
            TcpListener::bind(addr).map_err(|e| format!("service: binding {addr}: {e}"))?;
        Ok(Self { listener, opts })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, String> {
        self.listener
            .local_addr()
            .map_err(|e| format!("service: local_addr: {e}"))
    }

    /// Accept loop: serves connections sequentially, one sweep per
    /// connection. Returns after the first connection when
    /// [`ServeOptions::once`] is set; otherwise runs until the process dies
    /// (the operational mode — campaign sweeps are long compared to accept
    /// latency, so sequential service keeps the shard pool contention-free).
    ///
    /// `notify` observes every progress/report frame sent to any client
    /// (the CLI prints them; tests pass a sink).
    pub fn serve(&self, notify: &mut (dyn FnMut(&Message) + Send)) -> Result<(), String> {
        loop {
            let (stream, peer) = self
                .listener
                .accept()
                .map_err(|e| format!("service: accept: {e}"))?;
            let peer = peer.to_string();
            if let Err(e) = self.handle_client(stream, &peer, notify) {
                // A broken client must not take the service down; surface the
                // error through notify and keep accepting.
                notify(&Message::Error { message: format!("{peer}: {e}") });
            }
            if self.opts.once {
                return Ok(());
            }
        }
    }

    /// Serves one client connection end to end: handshake, submit, shard,
    /// stream progress, final report.
    fn handle_client(
        &self,
        stream: TcpStream,
        peer: &str,
        notify: &mut (dyn FnMut(&Message) + Send),
    ) -> Result<(), String> {
        stream
            .set_read_timeout(Some(self.opts.read_timeout))
            .map_err(|e| format!("service: set_read_timeout: {e}"))?;
        let mut writer = stream
            .try_clone()
            .map_err(|e| format!("service: cloning stream for {peer}: {e}"))?;
        let mut reader = FrameReader::new(BufReader::new(stream));
        write_frame(
            &mut writer,
            &Message::Hello { role: "coordinator".into(), host: HostMeta::capture() }.encode(),
            peer,
        )?;

        // Read up to the submit frame (a polite client hellos first).
        let spec = loop {
            let frame = reader
                .read_frame(peer)?
                .ok_or_else(|| format!("service: {peer} disconnected before submitting"))?;
            match Message::decode(&frame) {
                Ok(Message::Hello { .. }) => continue,
                Ok(Message::Submit { spec }) => break spec,
                Ok(other) => {
                    let e = format!("service: expected submit, got {} frame", other.tag());
                    let _ = write_frame(&mut writer, &Message::Error { message: e.clone() }.encode(), peer);
                    return Err(e);
                }
                Err(e) => {
                    let _ = write_frame(&mut writer, &Message::Error { message: e.clone() }.encode(), peer);
                    return Err(e);
                }
            }
        };

        let outcome = (|| -> Result<(), String> {
            let (_cfg, campaign) = spec.to_campaign()?;
            write_frame(
                &mut writer,
                &Message::Accepted {
                    jobs: campaign.len(),
                    fingerprint: campaign.fingerprint(),
                }
                .encode(),
                peer,
            )?;
            let writer_cell = Mutex::new(&mut writer);
            let notify_cell = Mutex::new(notify);
            let mut forward = |msg: &Message| {
                let _ = write_frame(*writer_cell.lock().unwrap(), &msg.encode(), peer);
                (notify_cell.lock().unwrap())(msg);
            };
            let run = run_sharded(&campaign, &spec, &self.opts, &mut forward)?;
            let ok = run.results.iter().filter(|r| r.is_success()).count();
            let report = Message::Report {
                fingerprint: campaign.fingerprint(),
                summary: format!(
                    "{ok}/{} jobs ok, {} worker crash(es), {:.2}s wall, {} worker(s)",
                    run.results.len(),
                    run.crashes,
                    run.profile.wall_secs,
                    run.profile.threads
                ),
                crashes: run.crashes,
                hosts: run
                    .profile
                    .host
                    .as_ref()
                    .map(|h| h.hosts.clone())
                    .unwrap_or_default(),
                report_json: report::campaign_metrics_json(&run.results),
            };
            write_frame(*writer_cell.lock().unwrap(), &report.encode(), peer)?;
            (notify_cell.lock().unwrap())(&report);
            Ok(())
        })();
        if let Err(e) = &outcome {
            let _ = write_frame(&mut writer, &Message::Error { message: e.clone() }.encode(), peer);
        }
        outcome
    }
}

// ---------------------------------------------------------------------------
// Worker (stdio loop)
// ---------------------------------------------------------------------------

/// The `libra-sim worker` stdio loop: hello on stdout, then serve `assign`
/// frames until `shutdown` or clean EOF on stdin.
///
/// Workers are stateless between sweeps — every `assign` carries the full
/// [`JobSpec`] — but cache the rebuilt [`Campaign`] across consecutive
/// assignments of the same spec (rebuilding is cheap; the cache just avoids
/// re-deriving the suite 32 times per sweep).
pub fn run_worker() -> Result<(), String> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut reader = FrameReader::new(stdin.lock());
    let mut out = stdout.lock();
    write_frame(
        &mut out,
        &Message::Hello { role: "worker".into(), host: HostMeta::capture() }.encode(),
        "coordinator",
    )?;
    let mut cache: Option<(JobSpec, Campaign)> = None;
    while let Some(frame) = reader.read_frame("coordinator")? {
        match Message::decode(&frame)? {
            Message::Assign { job, spec } => {
                if cache.as_ref().is_none_or(|(s, _)| s != &spec) {
                    let (_cfg, campaign) = spec.to_campaign()?;
                    cache = Some((spec, campaign));
                }
                let (_, campaign) = cache.as_ref().expect("cache just filled");
                if job >= campaign.len() {
                    let msg = format!(
                        "worker: assignment {job} out of range ({} jobs)",
                        campaign.len()
                    );
                    let _ = write_frame(
                        &mut out,
                        &Message::Error { message: msg.clone() }.encode(),
                        "coordinator",
                    );
                    return Err(msg);
                }
                let result = campaign.run_one(job, &RunOptions::default());
                write_frame(
                    &mut out,
                    &Message::JobResult {
                        record: Record::from_result(&result),
                        host: HostMeta::capture(),
                    }
                    .encode(),
                    "coordinator",
                )?;
            }
            Message::Shutdown => break,
            other => {
                return Err(format!("worker: unexpected {} frame from coordinator", other.tag()))
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Submit (TCP client)
// ---------------------------------------------------------------------------

/// What a completed [`submit`] returns.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitOutcome {
    /// Jobs in the sweep (from the coordinator's `accepted` frame).
    pub jobs: usize,
    /// Campaign fingerprint, triple-checked: local rebuild, `accepted`, and
    /// the final report all must agree.
    pub fingerprint: u64,
    /// Coordinator's one-line summary.
    pub summary: String,
    /// Worker crashes the sweep absorbed.
    pub crashes: usize,
    /// One host stamp per contributing worker, in worker order.
    pub hosts: Vec<HostMeta>,
    /// The full `libra-metrics-v1` report, byte-identical to a
    /// single-process `libra-sim campaign --report-json` of the same spec.
    pub report_json: String,
}

/// Submits `spec` to a coordinator at `addr`, streaming progress frames into
/// `on_progress`, and returns the final report.
///
/// The client rebuilds the campaign locally and refuses a coordinator whose
/// fingerprint disagrees — version skew is caught before any cycles burn.
pub fn submit(
    addr: &str,
    spec: &JobSpec,
    timeout: Duration,
    on_progress: &mut dyn FnMut(&Message),
) -> Result<SubmitOutcome, String> {
    let (_cfg, local) = spec.to_campaign()?;
    let want_fp = local.fingerprint();
    let stream =
        TcpStream::connect(addr).map_err(|e| format!("submit: connecting {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| format!("submit: set_read_timeout: {e}"))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("submit: cloning stream: {e}"))?;
    let mut reader = FrameReader::new(BufReader::new(stream));
    write_frame(
        &mut writer,
        &Message::Hello { role: "client".into(), host: HostMeta::capture() }.encode(),
        addr,
    )?;
    write_frame(&mut writer, &Message::Submit { spec: spec.clone() }.encode(), addr)?;
    let mut jobs = None;
    loop {
        let frame = reader
            .read_frame(addr)?
            .ok_or_else(|| "submit: coordinator disconnected before the report".to_string())?;
        match Message::decode(&frame)? {
            Message::Hello { .. } => continue,
            Message::Accepted { jobs: n, fingerprint } => {
                if fingerprint != want_fp {
                    return Err(format!(
                        "submit: coordinator fingerprint {fingerprint:#x} != local {want_fp:#x} \
                         (mismatched builds or suite definitions)"
                    ));
                }
                if n != local.len() {
                    return Err(format!(
                        "submit: coordinator rebuilt {n} jobs, local campaign has {}",
                        local.len()
                    ));
                }
                jobs = Some(n);
            }
            msg @ Message::Progress { .. } => on_progress(&msg),
            Message::Report { fingerprint, summary, crashes, hosts, report_json } => {
                if fingerprint != want_fp {
                    return Err(format!(
                        "submit: report fingerprint {fingerprint:#x} != local {want_fp:#x}"
                    ));
                }
                let jobs = jobs
                    .ok_or_else(|| "submit: report arrived before accepted".to_string())?;
                return Ok(SubmitOutcome {
                    jobs,
                    fingerprint,
                    summary,
                    crashes,
                    hosts,
                    report_json,
                });
            }
            Message::Error { message } => return Err(format!("submit: coordinator: {message}")),
            other => {
                return Err(format!("submit: unexpected {} frame from coordinator", other.tag()))
            }
        }
    }
}
