//! Speedup attribution for the intra-frame parallel event core: *why* is
//! `speedup_par_over_heap` what it is?
//!
//! [`explain`] re-runs the [`crate::throughput`] comparison with the
//! [`tbr_common::hostprof`] collector installed around every parallel run, then
//! decomposes each par@N measurement into the overheads that bound it —
//! exactly the attribution "Parallelizing a modern GPU simulator" performs
//! before tuning:
//!
//! * **serial fraction** — coordinator time inside serial Shared commits, the
//!   Amdahl bottleneck no worker count can shrink;
//! * **parallel fraction** — coordinator time draining its own Local chunks,
//!   the work that *does* scale with threads;
//! * **barrier fraction** — coordinator time stalled at epoch barriers, the
//!   synchronization tax of the epoch protocol;
//! * **imbalance** — max-over-mean per-RU event occupancy, the skew that turns
//!   barrier time into idle workers.
//!
//! The three timed fractions are measured as *disjoint* sub-intervals of the
//! profiled phase wall on one monotonic clock, so each lies in `[0, 1]` and
//! their sum is ≤ 1 by construction (the observability tests pin this — it is
//! an acceptance invariant, not a hope). The Amdahl prediction treats
//! everything the coordinator does outside its own Local drains as serial:
//! `predicted = 1 / (s + (1 - s) / threads)` with `s = serial + barrier +
//! other`, a deliberately conservative model a future perf PR must beat.
//!
//! Profiling adds host-clock reads to the parallel runs, so the throughput
//! numbers produced alongside an attribution are slightly pessimistic for the
//! parallel driver; the simulated results stay bit-identical (asserted, as in
//! the plain comparison).

use tbr_common::config::GpuConfig;
use tbr_common::hostprof::{self, HostMeta, HostProfile};
use tbr_common::metrics::MetricValue;
use tbr_workloads::BenchmarkProfile;

use crate::throughput::{self, ThroughputReport, PAR_THREADS};
use crate::SchedulerKind;

/// The attribution of one par@N measurement.
#[derive(Debug, Clone)]
pub struct ThreadAttribution {
    /// Worker count of the measured run.
    pub threads: usize,
    /// Total wall of the par run (all phases, geometry included), ns.
    pub wall_ns: u128,
    /// Wall of the profiled raster phases only, ns.
    pub phase_wall_ns: u64,
    /// Share of the phase wall in serial Shared commits.
    pub serial_fraction: f64,
    /// Share of the phase wall in the coordinator's own Local drains.
    pub parallel_fraction: f64,
    /// Share of the phase wall stalled at epoch barriers.
    pub barrier_fraction: f64,
    /// The unattributed remainder (classification, parking, ledger merges).
    pub other_fraction: f64,
    /// How much of the whole run the profiled phases cover (raster share).
    pub coverage: f64,
    /// Amdahl-predicted speedup over the serial-driver baseline at this
    /// thread count, from the measured serial share.
    pub predicted_speedup: f64,
    /// Measured heap-over-par speedup (>1: the parallel driver won).
    pub measured_speedup: f64,
    /// Epoch-drain invocations across the profiled phases.
    pub epochs: u64,
    /// Epochs that actually fanned out over threads.
    pub parallel_epochs: u64,
    /// Micro-events classified Local.
    pub local_events: u64,
    /// Micro-events committed serially as Shared.
    pub shared_commits: u64,
    /// Local share of all micro-events.
    pub local_share: f64,
    /// Max-over-mean per-RU event occupancy (1.0 = perfectly balanced).
    pub imbalance: f64,
    /// Local-run-length percentiles (p50, p95, p99), in events per run.
    pub run_length_pcts: (f64, f64, f64),
}

/// The full attribution report: one row per [`PAR_THREADS`] entry plus the
/// host stamp and the serial baseline it is measured against.
#[derive(Debug, Clone)]
pub struct AttributionReport {
    /// Wall of the serial heap-driver baseline, ns.
    pub heap_wall_ns: u128,
    /// Host metadata at measurement time.
    pub host: HostMeta,
    /// Per-thread-count attributions.
    pub rows: Vec<ThreadAttribution>,
}

impl AttributionReport {
    /// Hand-written JSON, schema `libra-attribution-v1`.
    pub fn to_json(&self) -> String {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"threads\": {}, \"wall_ns\": {}, \"phase_wall_ns\": {}, \
                     \"serial_fraction\": {:.6}, \"parallel_fraction\": {:.6}, \
                     \"barrier_fraction\": {:.6}, \"other_fraction\": {:.6}, \
                     \"coverage\": {:.6}, \"predicted_speedup\": {:.4}, \
                     \"measured_speedup\": {:.4}, \"epochs\": {}, \"parallel_epochs\": {}, \
                     \"local_events\": {}, \"shared_commits\": {}, \"local_share\": {:.6}, \
                     \"imbalance\": {:.4}, \"run_length_p50\": {:.2}, \
                     \"run_length_p95\": {:.2}, \"run_length_p99\": {:.2}}}",
                    r.threads,
                    r.wall_ns,
                    r.phase_wall_ns,
                    r.serial_fraction,
                    r.parallel_fraction,
                    r.barrier_fraction,
                    r.other_fraction,
                    r.coverage,
                    r.predicted_speedup,
                    r.measured_speedup,
                    r.epochs,
                    r.parallel_epochs,
                    r.local_events,
                    r.shared_commits,
                    r.local_share,
                    r.imbalance,
                    r.run_length_pcts.0,
                    r.run_length_pcts.1,
                    r.run_length_pcts.2,
                )
            })
            .collect::<Vec<_>>()
            .join(",\n    ");
        format!(
            "{{\n  \"schema\": \"libra-attribution-v1\",\n  \"heap_wall_ns\": {},\n  \
             \"host\": {},\n  \"rows\": [\n    {}\n  ]\n}}\n",
            self.heap_wall_ns,
            self.host.json_object(),
            rows,
        )
    }

    /// Multi-line human table.
    pub fn render(&self) -> String {
        let mut s = format!(
            "speedup attribution — parallel event core vs heap baseline \
             (host: {} cores)\n  thr  serial%  parallel%  barrier%  other%  \
             imbal  local%  predicted  measured\n",
            self.host.cores
        );
        for r in &self.rows {
            s.push_str(&format!(
                "  {:>3} {:>8.1} {:>10.1} {:>9.1} {:>7.1} {:>6.2} {:>7.1} {:>9.2}x {:>8.2}x\n",
                r.threads,
                r.serial_fraction * 100.0,
                r.parallel_fraction * 100.0,
                r.barrier_fraction * 100.0,
                r.other_fraction * 100.0,
                r.imbalance,
                r.local_share * 100.0,
                r.predicted_speedup,
                r.measured_speedup,
            ));
        }
        if let Some(r) = self.rows.last() {
            let (p50, p95, p99) = r.run_length_pcts;
            s.push_str(&format!(
                "  par@{}: raster coverage {:.0}% of the run, {} epochs \
                 ({} parallel), run-length p50/p95/p99 = {:.0}/{:.0}/{:.0}\n",
                r.threads,
                r.coverage * 100.0,
                r.epochs,
                r.parallel_epochs,
                p50,
                p95,
                p99,
            ));
            let serial = r.serial_fraction + r.barrier_fraction + r.other_fraction;
            s.push_str(&format!(
                "  Amdahl: non-parallelizable share {:.0}% caps the speedup at \
                 {:.2}x regardless of thread count\n",
                serial * 100.0,
                if serial > 0.0 { 1.0 / serial } else { f64::INFINITY },
            ));
        }
        s
    }
}

fn attribute(
    threads: usize,
    record_wall_ns: u128,
    heap_wall_ns: u128,
    profile: &HostProfile,
) -> ThreadAttribution {
    let t = profile.totals();
    let serial = t.serial_fraction();
    let parallel = t.parallel_fraction();
    let barrier = t.barrier_fraction();
    let other = t.other_fraction();
    // Everything the coordinator does outside its own parallelizable drains is
    // modeled serial — conservative on purpose (see the module docs).
    let s = (serial + barrier + other).clamp(0.0, 1.0);
    let predicted = if threads == 0 {
        0.0
    } else {
        1.0 / (s + (1.0 - s) / threads as f64)
    };
    let measured = if record_wall_ns == 0 {
        0.0
    } else {
        heap_wall_ns as f64 / record_wall_ns as f64
    };
    let coverage = if record_wall_ns == 0 {
        0.0
    } else {
        (t.wall_ns as f64 / record_wall_ns as f64).clamp(0.0, 1.0)
    };
    let occ = profile.ru_occupancy();
    let imbalance = {
        let total: u64 = occ.iter().sum();
        if total == 0 || occ.is_empty() {
            0.0
        } else {
            *occ.iter().max().expect("non-empty") as f64 / (total as f64 / occ.len() as f64)
        }
    };
    let hist: MetricValue = t.run_length_histogram();
    let p = |q: f64| hist.quantile(q).unwrap_or(0.0);
    ThreadAttribution {
        threads,
        wall_ns: record_wall_ns,
        phase_wall_ns: t.wall_ns,
        serial_fraction: serial,
        parallel_fraction: parallel,
        barrier_fraction: barrier,
        other_fraction: other,
        coverage,
        predicted_speedup: predicted,
        measured_speedup: measured,
        epochs: t.epochs,
        parallel_epochs: t.parallel_epochs,
        local_events: t.local_events,
        shared_commits: t.shared_commits,
        local_share: t.local_share(),
        imbalance,
        run_length_pcts: (p(0.50), p(0.95), p(0.99)),
    }
}

/// Runs the full scan/heap/par throughput comparison with hostprof installed
/// around every parallel run, returning both the plain report and its
/// attribution. Differential contract unchanged: simulated cycles and event
/// counts are asserted identical across every driver and thread count.
pub fn explain(
    cfg: &GpuConfig,
    scheduler: SchedulerKind,
    profiles: &[BenchmarkProfile],
    frames: u32,
) -> (ThroughputReport, AttributionReport) {
    let scan = throughput::measure_mode(
        crate::EventLoopMode::Scan,
        cfg,
        scheduler,
        profiles,
        frames,
    );
    let heap = throughput::measure_mode(
        crate::EventLoopMode::Heap,
        cfg,
        scheduler,
        profiles,
        frames,
    );
    assert_eq!(scan.cycles, heap.cycles, "differential contract (cycles)");
    assert_eq!(scan.events, heap.events, "differential contract (events)");

    let mut par = Vec::new();
    let mut rows = Vec::new();
    for &threads in PAR_THREADS {
        hostprof::start();
        let r = throughput::measure_par(threads, cfg, scheduler, profiles, frames);
        let profile = hostprof::finish().expect("collector installed above");
        assert_eq!(heap.cycles, r.cycles, "par@{threads} cycles must match heap");
        assert_eq!(heap.events, r.events, "par@{threads} events must match heap");
        rows.push(attribute(threads, r.wall_ns, heap.wall_ns, &profile));
        par.push((threads, r));
    }

    let host = HostMeta::capture();
    let report = ThroughputReport {
        workloads: profiles.iter().map(|p| p.abbrev.to_string()).collect(),
        frames,
        raster_units: cfg.num_raster_units as u32,
        scan,
        heap,
        par,
        host: host.clone(),
    };
    let attribution = AttributionReport {
        heap_wall_ns: heap.wall_ns,
        host,
        rows,
    };
    (report, attribution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbr_common::config::ScreenConfig;
    use tbr_workloads::suite;

    #[test]
    fn explain_attributes_every_thread_count_with_consistent_fractions() {
        let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
        let profiles = vec![suite().remove(0)];
        let (report, attr) = explain(&cfg, SchedulerKind::Libra, &profiles, 1);
        assert_eq!(attr.rows.len(), PAR_THREADS.len());
        assert_eq!(report.par.len(), PAR_THREADS.len());
        for r in &attr.rows {
            for (name, f) in [
                ("serial", r.serial_fraction),
                ("parallel", r.parallel_fraction),
                ("barrier", r.barrier_fraction),
                ("other", r.other_fraction),
                ("coverage", r.coverage),
                ("local_share", r.local_share),
            ] {
                assert!((0.0..=1.0).contains(&f), "{name} fraction out of range: {f}");
            }
            let sum = r.serial_fraction + r.parallel_fraction + r.barrier_fraction;
            assert!(sum <= 1.0 + 1e-9, "timed fractions must sum to <= 1, got {sum}");
            assert!(r.phase_wall_ns > 0, "profiled phases must be non-empty");
            assert!(r.epochs > 0);
            assert!(r.predicted_speedup >= 1.0 - 1e-9);
            assert!(r.imbalance >= 1.0 || r.local_events + r.shared_commits == 0);
        }
        // The profiler must not perturb simulated results (asserted inside
        // explain, restated here as the test's contract).
        assert_eq!(report.scan.cycles, report.heap.cycles);
        let json = attr.to_json();
        assert!(json.contains("libra-attribution-v1"));
        assert!(attr.render().contains("Amdahl"));
    }
}
