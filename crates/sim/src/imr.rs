//! Immediate-Mode Rendering (IMR) comparison mode.
//!
//! §II of the paper motivates TBR against "traditional architectures that are not
//! tile-based, also known as Immediate-Mode Rendering (IMR) GPUs", citing Antochi et
//! al.: tiling considerably reduces external data traffic. This module makes that
//! claim measurable inside the same simulator: primitives are rendered in submission
//! order over the whole screen, and — the defining IMR property — the **depth buffer
//! and colour buffer live in DRAM**, accessed through the L2 per quad instead of in
//! per-tile on-chip SRAM.
//!
//! The model is deliberately coarse-grained relative to the TBR path (one combined
//! read-modify-write stream per quad for Z and colour), because its purpose is the
//! *traffic* comparison of `ablation_imr`, not a competitive IMR design.

use tbr_common::addr::{framebuffer_addr, AccessKind};
use tbr_common::config::GpuConfig;
use tbr_common::ids::FrameId;
use tbr_common::stats::{FrameStats, SequenceStats, TileHeatmap};
use tbr_common::Cycle;
use tbr_mem::hierarchy::{L1Cache, MemoryHierarchy};
use tbr_raster::rasterizer::rasterize_in_rect;
use tbr_raster::shader::ShaderCore;
use tbr_workloads::{BenchmarkProfile, SceneGenerator};

use crate::geometry_phase::run_geometry_phase;

/// Simulated physical address of the IMR depth buffer (disjoint from the colour
/// framebuffer region).
const DEPTH_BASE_OFFSET: u64 = 0x4000_0000;

/// Renders a benchmark sequence on an IMR organisation of the same GPU: same cores,
/// same caches, same DRAM — but no tiling engine, and Z/colour traffic goes to DRAM.
pub fn simulate_sequence_imr(
    cfg: &GpuConfig,
    profile: &BenchmarkProfile,
    frames: u32,
) -> SequenceStats {
    cfg.validate().expect("invalid GPU configuration");
    let gen = SceneGenerator::new(profile, &cfg.screen);
    let mut hier = MemoryHierarchy::new(cfg.l2_cache, cfg.dram, cfg.dram_interval_cycles);
    hier.ideal = cfg.ideal_memory;
    let mut vertex_l1 = L1Cache::new(cfg.vertex_cache);
    let total_cores = cfg.total_cores();
    let mut cores: Vec<ShaderCore> =
        (0..total_cores).map(|_| ShaderCore::new(cfg.texture_cache, cfg.max_warps_per_core)).collect();
    // Depth values kept functionally (the traffic is what is timed).
    let mut depth = vec![f32::INFINITY; (cfg.screen.width * cfg.screen.height) as usize];
    let mut seq = SequenceStats::default();

    for frame_no in 0..frames {
        let scene = gen.scene(frame_no);
        // IMR still runs the geometry pipeline, but with no binning: the binning
        // cost and Parameter-Buffer traffic are charged as zero by re-timing below.
        let geo = run_geometry_phase(cfg, &mut vertex_l1, &mut hier, &scene);
        let vertex_cache = vertex_l1.end_frame();
        let (geo_l2, geo_dram) = hier.end_frame();
        depth.fill(f32::INFINITY);

        let mut t: Cycle = 0;
        let mut frame_end: Cycle = 0;
        let mut next_core = 0usize;
        let mut fragments = 0u64;
        let mut warps = 0u64;
        let mut instructions = 0u64;
        let mut tex_requests = 0u64;
        let mut tex_latency_sum = 0u64;
        let w = cfg.screen.width;

        for pi in 0..geo.tris.len() {
            let prim = geo.tris.get(pi);
            t += cfg.costs.raster_setup_cycles;
            let quads = rasterize_in_rect(&prim, 0, 0, cfg.screen.width, cfg.screen.height);
            if quads.is_empty() {
                continue;
            }
            t += (quads.len() as Cycle).div_ceil(cfg.costs.raster_quads_per_cycle.max(1));

            let lod = tbr_raster::rasterizer::TriangleSetup::new(&prim)
                .map(|s| tbr_raster::texture::select_mip(&prim.texture, s.uv_derivative))
                .unwrap_or(0);

            let mut surv: Vec<(tbr_raster::Quad, u8)> = Vec::with_capacity(quads.len());
            for q in quads {
                // IMR depth test: the Z-buffer is a DRAM-backed surface read (and
                // written) through the L2 per quad — TBR keeps this on chip.
                let zaddr = framebuffer_addr(&cfg.screen, q.x, q.y) + DEPTH_BASE_OFFSET;
                let zr = hier.access(zaddr, t, AccessKind::TextureRead);
                t = t.max(zr.completion);
                let mut pass = 0u8;
                for lane in 0..4usize {
                    if q.mask & (1 << lane) == 0 {
                        continue;
                    }
                    let (px, py) = q.lane_pixel(lane);
                    let idx = (py * w + px) as usize;
                    if q.z[lane] <= depth[idx] {
                        pass |= 1 << lane;
                        if prim.blend == tbr_geom::scene::BlendMode::Opaque {
                            depth[idx] = q.z[lane];
                        }
                    }
                }
                if pass == 0 {
                    continue;
                }
                // Z write-back + colour read-modify-write, also DRAM-backed.
                let _ = hier.access(zaddr, t, AccessKind::FramebufferWrite);
                let caddr = framebuffer_addr(&cfg.screen, q.x, q.y);
                let _ = hier.access(caddr, t, AccessKind::FramebufferWrite);
                surv.push((q, pass));
            }

            // Shade surviving quads on the unified cores (same warp model as TBR).
            for group in surv.chunks(cfg.quads_per_warp() as usize) {
                let frag: u32 = group.iter().map(|(_, m)| m.count_ones()).sum();
                fragments += frag as u64;
                let lines = tbr_raster::raster_unit::gather_sample_lines_for(
                    group,
                    &prim.texture,
                    lod,
                    prim.shader.tex_samples,
                    prim.shader.filter,
                );
                let core = &mut cores[next_core];
                next_core = (next_core + 1) % total_cores;
                let o = core.execute_warp(&prim.shader, lines.view(), t, &mut hier);
                warps += 1;
                instructions += o.instructions;
                tex_requests += o.tex_requests;
                tex_latency_sum += o.tex_latency_sum;
                frame_end = frame_end.max(o.completion);
            }
            frame_end = frame_end.max(t);
        }

        let mut texture_cache = tbr_common::stats::CacheStats::default();
        for c in &mut cores {
            texture_cache.merge(&c.end_frame());
        }
        let (mut l2_cache, mut dram) = hier.end_frame();
        l2_cache.merge(&geo_l2);
        dram.merge(&geo_dram);

        seq.frames.push(FrameStats {
            frame: FrameId(frame_no),
            geometry_cycles: geo.cycles,
            raster_cycles: frame_end,
            vertex_cache,
            texture_cache,
            l2_cache,
            dram,
            heatmap: TileHeatmap::new(cfg.screen.num_tiles()),
            vertices: geo.counts.vertices_shaded,
            primitives: geo.counts.prims_out,
            fragments,
            warps,
            instructions,
            texture_requests: tex_requests,
            texture_latency_sum: tex_latency_sum,
            ..FrameStats::default()
        });
    }
    seq
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate_sequence, SchedulerKind};
    use tbr_common::config::ScreenConfig;
    use tbr_workloads::suite;

    #[test]
    fn imr_generates_more_dram_traffic_than_tbr() {
        // The claim TBR exists for (§II, Antochi et al.): on-chip tile buffers cut
        // external traffic. IMR pays DRAM for every quad's Z test and colour write.
        let cfg = GpuConfig::baseline(ScreenConfig::tiny());
        let p = suite().remove(4); // CCS
        let tbr = simulate_sequence(&cfg, SchedulerKind::SingleZOrder, &p, 2);
        let imr = simulate_sequence_imr(&cfg, &p, 2);
        assert!(
            imr.total_dram_accesses() > tbr.total_dram_accesses(),
            "IMR {} must exceed TBR {}",
            imr.total_dram_accesses(),
            tbr.total_dram_accesses()
        );
    }

    #[test]
    fn imr_shades_the_same_fragments() {
        let cfg = GpuConfig::baseline(ScreenConfig::tiny());
        let p = suite().remove(0);
        let tbr = simulate_sequence(&cfg, SchedulerKind::SingleZOrder, &p, 1);
        let imr = simulate_sequence_imr(&cfg, &p, 1);
        // Same geometry, same Early-Z discipline -> identical shaded-fragment count.
        assert_eq!(tbr.frames[0].fragments, imr.frames[0].fragments);
        assert_eq!(tbr.frames[0].primitives, imr.frames[0].primitives);
    }

    #[test]
    fn imr_is_deterministic() {
        let cfg = GpuConfig::baseline(ScreenConfig::tiny());
        let p = suite().remove(0);
        assert_eq!(simulate_sequence_imr(&cfg, &p, 2), simulate_sequence_imr(&cfg, &p, 2));
    }
}
