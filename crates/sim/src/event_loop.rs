//! Selection of the raster-phase event-loop implementation.
//!
//! The simulator has three drivers for "advance the micro-event with the
//! earliest timestamp": the **indexed** driver (binary heaps with lazy
//! invalidation — the default, and the fast serial path), the legacy **scan**
//! driver (O(RUs × warps) linear scan per event), and the **parallel** driver
//! (per-RU-shard sub-queues advanced by worker threads between epoch barriers).
//! The scan loop is the behavioural specification: the other drivers must
//! reproduce its event sequence *bit-identically*, and `tests/event_loop_diff.rs`
//! plus `tests/parallel_core_diff.rs` hold them against each other as
//! differential oracles.
//!
//! The mode is resolved per raster phase from, in priority order:
//!
//! 1. the process-global override set by [`set_mode`] (the CLI's `--event-loop`
//!    flag and tests use this), and otherwise
//! 2. the `LIBRA_EVENT_LOOP` environment variable (`heap`, `scan` or `par`),
//! 3. defaulting to [`EventLoopMode::Heap`].
//!
//! The parallel driver's worker count resolves the same way: [`set_sim_threads`]
//! (the CLI's `--sim-threads`), then the `LIBRA_SIM_THREADS` environment
//! variable, then 1. The thread count never affects results — only how fast
//! they are produced — so campaign fan-out composes freely with per-job
//! threads (total concurrency = campaign `--threads` × `--sim-threads`).
//!
//! The overrides are relaxed atomics: concurrent simulations reading them while
//! they change is benign *because* the modes are bit-identical — selection can
//! never change a result, only how fast it is produced.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

/// Which event-loop driver the raster phase uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventLoopMode {
    /// Indexed next-event core: per-RU warp queues + a global RU queue
    /// (deterministic binary heaps with lazy invalidation).
    Heap,
    /// The legacy per-event linear scan, kept as the differential oracle.
    Scan,
    /// Intra-frame parallel core: contiguous RU shards drain their local
    /// events on worker threads up to an epoch horizon; shared events (L2/DRAM
    /// accesses, flushes, scheduler decisions) are committed serially at the
    /// barriers in canonical `(time, RU)` order, keeping results bit-identical
    /// to [`EventLoopMode::Heap`].
    Par,
}

const UNSET: u8 = 0;
const HEAP: u8 = 1;
const SCAN: u8 = 2;
const PAR: u8 = 3;

static OVERRIDE: AtomicU8 = AtomicU8::new(UNSET);

/// Worker-thread override for [`EventLoopMode::Par`]; 0 = unset.
static THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets (or with `None` clears) the process-global mode override, which takes
/// precedence over `LIBRA_EVENT_LOOP`.
pub fn set_mode(mode: Option<EventLoopMode>) {
    let v = match mode {
        None => UNSET,
        Some(EventLoopMode::Heap) => HEAP,
        Some(EventLoopMode::Scan) => SCAN,
        Some(EventLoopMode::Par) => PAR,
    };
    OVERRIDE.store(v, Ordering::Relaxed);
}

/// The current process-global override, if any (lets measurement code
/// save/restore the mode around a pinned-mode run).
pub fn override_mode() -> Option<EventLoopMode> {
    match OVERRIDE.load(Ordering::Relaxed) {
        HEAP => Some(EventLoopMode::Heap),
        SCAN => Some(EventLoopMode::Scan),
        PAR => Some(EventLoopMode::Par),
        _ => None,
    }
}

/// Resolves the mode the next raster phase will run under.
pub fn mode() -> EventLoopMode {
    match OVERRIDE.load(Ordering::Relaxed) {
        HEAP => EventLoopMode::Heap,
        SCAN => EventLoopMode::Scan,
        PAR => EventLoopMode::Par,
        _ => match std::env::var("LIBRA_EVENT_LOOP") {
            Ok(v) if v.eq_ignore_ascii_case("scan") => EventLoopMode::Scan,
            Ok(v) if v.eq_ignore_ascii_case("par") => EventLoopMode::Par,
            _ => EventLoopMode::Heap,
        },
    }
}

/// Parses a mode name as accepted by `LIBRA_EVENT_LOOP` / `--event-loop`.
pub fn parse(name: &str) -> Option<EventLoopMode> {
    if name.eq_ignore_ascii_case("heap") {
        Some(EventLoopMode::Heap)
    } else if name.eq_ignore_ascii_case("scan") {
        Some(EventLoopMode::Scan)
    } else if name.eq_ignore_ascii_case("par") {
        Some(EventLoopMode::Par)
    } else {
        None
    }
}

/// Sets (or with `None` clears) the process-global worker-thread count for
/// [`EventLoopMode::Par`], which takes precedence over `LIBRA_SIM_THREADS`.
/// Values are clamped to at least 1 when read.
pub fn set_sim_threads(threads: Option<usize>) {
    THREADS_OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// The current sim-threads override, if any (for save/restore around a
/// pinned-thread-count run).
pub fn sim_threads_override() -> Option<usize> {
    match THREADS_OVERRIDE.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

/// Worker threads the parallel driver will use: the [`set_sim_threads`]
/// override, else `LIBRA_SIM_THREADS`, else 1.
pub fn sim_threads() -> usize {
    match THREADS_OVERRIDE.load(Ordering::Relaxed) {
        0 => std::env::var("LIBRA_SIM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(1),
        n => n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_takes_precedence_and_clears() {
        set_mode(Some(EventLoopMode::Scan));
        assert_eq!(mode(), EventLoopMode::Scan);
        set_mode(Some(EventLoopMode::Par));
        assert_eq!(mode(), EventLoopMode::Par);
        set_mode(Some(EventLoopMode::Heap));
        assert_eq!(mode(), EventLoopMode::Heap);
        set_mode(None);
        // Without an override the env var (unset in tests) defaults to Heap.
    }

    #[test]
    fn parse_accepts_all_names() {
        assert_eq!(parse("heap"), Some(EventLoopMode::Heap));
        assert_eq!(parse("SCAN"), Some(EventLoopMode::Scan));
        assert_eq!(parse("Par"), Some(EventLoopMode::Par));
        assert_eq!(parse("calendar"), None);
    }

    #[test]
    fn sim_threads_override_round_trips() {
        let saved = sim_threads_override();
        set_sim_threads(Some(4));
        assert_eq!(sim_threads(), 4);
        assert_eq!(sim_threads_override(), Some(4));
        set_sim_threads(None);
        assert_eq!(sim_threads_override(), None);
        // Without an override the env var (unset in tests) defaults to 1.
        assert_eq!(sim_threads(), 1);
        set_sim_threads(saved);
    }
}
