//! Selection of the raster-phase event-loop implementation.
//!
//! The simulator has two drivers for "advance the micro-event with the earliest
//! timestamp": the **indexed** driver (binary heaps with lazy invalidation — the
//! default, and the fast path) and the legacy **scan** driver (O(RUs × warps)
//! linear scan per event). The scan loop is the behavioural specification: the
//! indexed driver must reproduce its event sequence *bit-identically*, and
//! `tests/event_loop_diff.rs` holds the two against each other as a differential
//! oracle.
//!
//! The mode is resolved per raster phase from, in priority order:
//!
//! 1. the process-global override set by [`set_mode`] (the CLI's `--event-loop`
//!    flag and tests use this), and otherwise
//! 2. the `LIBRA_EVENT_LOOP` environment variable (`heap` or `scan`),
//! 3. defaulting to [`EventLoopMode::Heap`].
//!
//! The override is a relaxed atomic: concurrent simulations reading it while it
//! changes is benign *because* the two modes are bit-identical — mode selection
//! can never change a result, only how fast it is produced.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which event-loop driver the raster phase uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventLoopMode {
    /// Indexed next-event core: per-RU warp queues + a global RU queue
    /// (deterministic binary heaps with lazy invalidation).
    Heap,
    /// The legacy per-event linear scan, kept as the differential oracle.
    Scan,
}

const UNSET: u8 = 0;
const HEAP: u8 = 1;
const SCAN: u8 = 2;

static OVERRIDE: AtomicU8 = AtomicU8::new(UNSET);

/// Sets (or with `None` clears) the process-global mode override, which takes
/// precedence over `LIBRA_EVENT_LOOP`.
pub fn set_mode(mode: Option<EventLoopMode>) {
    let v = match mode {
        None => UNSET,
        Some(EventLoopMode::Heap) => HEAP,
        Some(EventLoopMode::Scan) => SCAN,
    };
    OVERRIDE.store(v, Ordering::Relaxed);
}

/// The current process-global override, if any (lets measurement code
/// save/restore the mode around a pinned-mode run).
pub fn override_mode() -> Option<EventLoopMode> {
    match OVERRIDE.load(Ordering::Relaxed) {
        HEAP => Some(EventLoopMode::Heap),
        SCAN => Some(EventLoopMode::Scan),
        _ => None,
    }
}

/// Resolves the mode the next raster phase will run under.
pub fn mode() -> EventLoopMode {
    match OVERRIDE.load(Ordering::Relaxed) {
        HEAP => EventLoopMode::Heap,
        SCAN => EventLoopMode::Scan,
        _ => match std::env::var("LIBRA_EVENT_LOOP") {
            Ok(v) if v.eq_ignore_ascii_case("scan") => EventLoopMode::Scan,
            _ => EventLoopMode::Heap,
        },
    }
}

/// Parses a mode name as accepted by `LIBRA_EVENT_LOOP` / `--event-loop`.
pub fn parse(name: &str) -> Option<EventLoopMode> {
    if name.eq_ignore_ascii_case("heap") {
        Some(EventLoopMode::Heap)
    } else if name.eq_ignore_ascii_case("scan") {
        Some(EventLoopMode::Scan)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_takes_precedence_and_clears() {
        set_mode(Some(EventLoopMode::Scan));
        assert_eq!(mode(), EventLoopMode::Scan);
        set_mode(Some(EventLoopMode::Heap));
        assert_eq!(mode(), EventLoopMode::Heap);
        set_mode(None);
        // Without an override the env var (unset in tests) defaults to Heap.
    }

    #[test]
    fn parse_accepts_both_names() {
        assert_eq!(parse("heap"), Some(EventLoopMode::Heap));
        assert_eq!(parse("SCAN"), Some(EventLoopMode::Scan));
        assert_eq!(parse("calendar"), None);
    }
}
