//! Simulation-throughput measurement: events/sec and ns/event per driver.
//!
//! The unit of work is the *micro-event* ([`FrameStats::micro_events`]): one
//! geometry fetch/bin insertion or one raster event-loop decision. Both
//! event-loop drivers process the identical event sequence (they are
//! bit-identical by contract), so events/sec is a fair wall-clock comparison
//! of the drivers themselves.
//!
//! Results are recorded — never asserted on — because wall-clock time depends
//! on the machine. `scripts/ci.sh` writes the numbers to
//! `BENCH_sim_throughput.json` so a human (or the bench harness) can watch the
//! trend.
//!
//! [`FrameStats::micro_events`]: tbr_common::stats::FrameStats::micro_events

use std::time::Instant;

use tbr_common::config::GpuConfig;
use tbr_common::hostprof::HostMeta;
use tbr_common::stats::FrameStats;
use tbr_workloads::BenchmarkProfile;

use crate::event_loop::{self, EventLoopMode};
use crate::gpu::simulate_sequence;
use crate::SchedulerKind;

/// One timed run of a workload slice under a pinned event-loop driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputRecord {
    /// Which driver was pinned for the run.
    pub mode: EventLoopMode,
    /// Wall-clock duration of the slice, in nanoseconds.
    pub wall_ns: u128,
    /// Micro-events processed (summed over all frames of all workloads).
    pub events: u64,
    /// Simulated cycles (summed) — a determinism cross-check between runs.
    pub cycles: u64,
}

impl ThroughputRecord {
    /// Micro-events simulated per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.events as f64 / (self.wall_ns as f64 / 1e9)
    }

    /// Wall-clock nanoseconds spent per micro-event.
    pub fn ns_per_event(&self) -> f64 {
        if self.events == 0 {
            return 0.0;
        }
        self.wall_ns as f64 / self.events as f64
    }
}

/// The worker counts [`compare`] records the parallel driver at.
pub const PAR_THREADS: &[usize] = &[1, 2, 4];

/// A scan-vs-heap-vs-par comparison over the same workload slice.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// Workload abbreviations that made up the slice.
    pub workloads: Vec<String>,
    /// Frames simulated per workload.
    pub frames: u32,
    /// Raster units in the measured configuration.
    pub raster_units: u32,
    /// The legacy linear-scan driver.
    pub scan: ThroughputRecord,
    /// The indexed heap driver.
    pub heap: ThroughputRecord,
    /// The intra-frame parallel driver at each recorded worker count, as
    /// `(threads, record)`. Record-only: the parallel speedup depends on the
    /// host and is never asserted on.
    pub par: Vec<(usize, ThroughputRecord)>,
    /// Host metadata (core count, git rev, UTC) stamped at measurement time —
    /// what makes single-core-container numbers interpretable later.
    pub host: HostMeta,
}

impl ThroughputReport {
    /// Heap-over-scan wall-clock speedup (>1 means the heap driver is faster).
    pub fn speedup(&self) -> f64 {
        if self.heap.wall_ns == 0 {
            return 0.0;
        }
        self.scan.wall_ns as f64 / self.heap.wall_ns as f64
    }

    /// Par-over-heap wall-clock speedup at the highest recorded worker count
    /// (>1 means the parallel driver beat the serial heap). Record-only.
    pub fn par_speedup(&self) -> f64 {
        match self.par.last() {
            Some((_, r)) if r.wall_ns > 0 => self.heap.wall_ns as f64 / r.wall_ns as f64,
            _ => 0.0,
        }
    }

    /// Whether [`par_speedup`](Self::par_speedup) measured anything real: on a
    /// host with fewer cores than the widest par ladder rung, the "parallel"
    /// workers time-slice one another and the recorded figure is scheduler
    /// noise, not a speedup. Such runs are stamped not-meaningful so history
    /// comparisons skip them instead of reporting a phantom regression.
    pub fn par_speedup_meaningful(&self) -> bool {
        match self.par.last() {
            Some((threads, _)) => self.host.cores >= *threads,
            None => false,
        }
    }

    /// Hand-written JSON for `BENCH_sim_throughput.json` (the workspace has no
    /// serde; the schema is flat enough to emit directly).
    pub fn to_json(&self) -> String {
        fn record(r: &ThroughputRecord) -> String {
            format!(
                "{{\"wall_ms\": {:.3}, \"events\": {}, \"events_per_sec\": {:.1}, \
                 \"ns_per_event\": {:.2}, \"cycles\": {}}}",
                r.wall_ns as f64 / 1e6,
                r.events,
                r.events_per_sec(),
                r.ns_per_event(),
                r.cycles,
            )
        }
        let workloads = self
            .workloads
            .iter()
            .map(|w| format!("\"{w}\""))
            .collect::<Vec<_>>()
            .join(", ");
        let par = self
            .par
            .iter()
            .map(|(threads, r)| format!("{{\"threads\": {}, \"record\": {}}}", threads, record(r)))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\n  \"bench\": \"sim_throughput\",\n  \"workloads\": [{}],\n  \
             \"frames\": {},\n  \"raster_units\": {},\n  \"host\": {},\n  \"scan\": {},\n  \
             \"heap\": {},\n  \"par\": [{}],\n  \
             \"speedup_heap_over_scan\": {:.3},\n  \
             \"speedup_par_over_heap\": {:.3},\n  \
             \"par_speedup_meaningful\": {}\n}}\n",
            workloads,
            self.frames,
            self.raster_units,
            self.host.json_object(),
            record(&self.scan),
            record(&self.heap),
            par,
            self.speedup(),
            self.par_speedup(),
            self.par_speedup_meaningful(),
        )
    }

    /// One-paragraph human summary for the CLI.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "sim throughput — {} workloads x {} frames, {} RUs (host: {} cores, rev {})\n",
            self.workloads.len(),
            self.frames,
            self.raster_units,
            self.host.cores,
            self.host.git_rev,
        ));
        let mut line = |label: String, r: &ThroughputRecord| {
            s.push_str(&format!(
                "  {:>6}: {:>8.1} ms  {:>12.0} events/s  {:>7.1} ns/event\n",
                label,
                r.wall_ns as f64 / 1e6,
                r.events_per_sec(),
                r.ns_per_event(),
            ));
        };
        line("scan".to_string(), &self.scan);
        line("heap".to_string(), &self.heap);
        for (threads, r) in &self.par {
            debug_assert_eq!(r.mode, EventLoopMode::Par);
            line(format!("par@{threads}"), r);
        }
        s.push_str(&format!(
            "  speedup (heap over scan): {:.2}x\n",
            self.speedup()
        ));
        if !self.par.is_empty() {
            let threads = self.par.last().map_or(0, |(t, _)| *t);
            if self.par_speedup_meaningful() {
                s.push_str(&format!(
                    "  speedup (par@{threads} over heap): {:.2}x (record only)\n",
                    self.par_speedup()
                ));
            } else {
                s.push_str(&format!(
                    "  speedup (par@{threads} over heap): {:.2}x — not meaningful \
                     (host has {} core(s) < {threads} workers; time-sliced, not parallel)\n",
                    self.par_speedup(),
                    self.host.cores,
                ));
            }
        }
        s
    }
}

/// Times one pinned-mode pass over `profiles`, restoring the previous mode
/// override afterwards.
pub fn measure_mode(
    mode: EventLoopMode,
    cfg: &GpuConfig,
    scheduler: SchedulerKind,
    profiles: &[BenchmarkProfile],
    frames: u32,
) -> ThroughputRecord {
    let saved = event_loop::override_mode();
    event_loop::set_mode(Some(mode));
    let start = Instant::now();
    let mut events = 0u64;
    let mut cycles = 0u64;
    for profile in profiles {
        let seq = simulate_sequence(cfg, scheduler, profile, frames);
        events += seq.frames.iter().map(|f| f.micro_events).sum::<u64>();
        cycles += seq.frames.iter().map(FrameStats::total_cycles).sum::<u64>();
    }
    let wall_ns = start.elapsed().as_nanos();
    event_loop::set_mode(saved);
    ThroughputRecord {
        mode,
        wall_ns,
        events,
        cycles,
    }
}

/// [`measure_mode`] with the parallel driver pinned to `threads` workers,
/// restoring the previous thread override afterwards.
pub fn measure_par(
    threads: usize,
    cfg: &GpuConfig,
    scheduler: SchedulerKind,
    profiles: &[BenchmarkProfile],
    frames: u32,
) -> ThroughputRecord {
    let saved = event_loop::sim_threads_override();
    event_loop::set_sim_threads(Some(threads));
    let record = measure_mode(EventLoopMode::Par, cfg, scheduler, profiles, frames);
    event_loop::set_sim_threads(saved);
    record
}

/// Runs the scan-vs-heap-vs-par comparison over a workload slice. The scan
/// pass runs first (warming the page cache and branch predictors in *its*
/// favour, which only makes the reported heap speedup conservative); the
/// parallel driver is then measured at each of [`PAR_THREADS`]. Simulated
/// cycles and event counts are asserted identical across every run — that is
/// the differential contract, not a performance assertion; wall-clock numbers
/// are only ever recorded.
pub fn compare(
    cfg: &GpuConfig,
    scheduler: SchedulerKind,
    profiles: &[BenchmarkProfile],
    frames: u32,
) -> ThroughputReport {
    let scan = measure_mode(EventLoopMode::Scan, cfg, scheduler, profiles, frames);
    let heap = measure_mode(EventLoopMode::Heap, cfg, scheduler, profiles, frames);
    assert_eq!(
        scan.cycles, heap.cycles,
        "the two drivers must simulate identical timing (differential contract)"
    );
    assert_eq!(
        scan.events, heap.events,
        "the two drivers must process identical event counts"
    );
    let par = PAR_THREADS
        .iter()
        .map(|&threads| {
            let r = measure_par(threads, cfg, scheduler, profiles, frames);
            assert_eq!(
                heap.cycles, r.cycles,
                "par@{threads} must simulate identical timing (differential contract)"
            );
            assert_eq!(
                heap.events, r.events,
                "par@{threads} must process identical event counts"
            );
            (threads, r)
        })
        .collect();
    ThroughputReport {
        workloads: profiles.iter().map(|p| p.abbrev.to_string()).collect(),
        frames,
        raster_units: cfg.num_raster_units as u32,
        scan,
        heap,
        par,
        host: HostMeta::capture(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbr_common::config::ScreenConfig;
    use tbr_workloads::suite;

    #[test]
    fn records_and_json_are_well_formed() {
        let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
        let profiles = vec![suite().remove(0)];
        let report = compare(&cfg, SchedulerKind::Libra, &profiles, 1);
        assert!(report.scan.events > 0);
        assert_eq!(report.scan.events, report.heap.events);
        assert_eq!(report.scan.cycles, report.heap.cycles);
        assert_eq!(report.par.len(), PAR_THREADS.len());
        for (threads, r) in &report.par {
            assert_eq!(r.events, report.heap.events, "par@{threads} event count");
            assert_eq!(r.cycles, report.heap.cycles, "par@{threads} cycles");
        }
        let json = report.to_json();
        assert!(json.contains("\"sim_throughput\""));
        assert!(json.contains("\"host\""));
        assert!(json.contains("\"cores\""));
        assert!(json.contains("\"git_rev\""));
        assert!(report.host.cores >= 1);
        assert!(json.contains("\"speedup_heap_over_scan\""));
        assert!(json.contains("\"speedup_par_over_heap\""));
        assert!(json.contains("\"par_speedup_meaningful\""));
        assert!(json.contains("\"threads\": 4"));
        assert!(report.render().contains("speedup"));
        assert!(report.render().contains("par@4"));
    }

    #[test]
    fn par_speedup_is_marked_meaningless_on_undersized_hosts() {
        let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
        let profiles = vec![suite().remove(0)];
        let mut report = compare(&cfg, SchedulerKind::Libra, &profiles, 1);
        let widest = report.par.last().unwrap().0;

        report.host.cores = widest;
        assert!(report.par_speedup_meaningful());
        assert!(report.to_json().contains("\"par_speedup_meaningful\": true"));
        assert!(report.render().contains("(record only)"));

        report.host.cores = widest - 1;
        assert!(!report.par_speedup_meaningful());
        assert!(report.to_json().contains("\"par_speedup_meaningful\": false"));
        let rendered = report.render();
        assert!(rendered.contains("not meaningful"), "{rendered}");
        assert!(rendered.contains("time-sliced"), "{rendered}");
    }
}
